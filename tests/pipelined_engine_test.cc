// Tests for the barrier-free pipelined engine and its building blocks.
//
// The load-bearing property mirrors the parallel engine's: at every epoch
// boundary, PipelinedQueryEngine must produce byte-identical candidate
// pairs (and transitions) to ContinuousQueryEngine on the same inputs —
// including when timestamp batches arrive split into fragments that the
// worker-side coalescer must merge, when lanes are sized down to capacity
// 1 (full backpressure), and across dynamic query churn. SpscLane and
// PlanShardAssignment get their own unit coverage, and the threaded lane
// and watermark tests are part of the TSan CI job's payload.

#include "gsps/engine/pipelined_query_engine.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "gsps/engine/continuous_query_engine.h"
#include "gsps/engine/ingest_audit.h"
#include "gsps/engine/ingest_queue.h"
#include "gsps/engine/parallel_query_engine.h"
#include "gsps/engine/shard_assignment.h"
#include "gsps/gen/stream_generator.h"
#include "gsps/graph/graph_change.h"

namespace gsps {
namespace {

// --- SpscLane --------------------------------------------------------------

IngestEvent DataEvent(int32_t stream, int32_t timestamp) {
  IngestEvent event;
  event.stream = stream;
  event.timestamp = timestamp;
  return event;
}

TEST(SpscLaneTest, FifoOrderAndStats) {
  SpscLane lane(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(lane.Push(DataEvent(0, i + 1)));
  EXPECT_EQ(lane.size(), 5u);
  IngestEvent event;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(lane.Pop(&event));
    EXPECT_EQ(event.timestamp, i + 1);
  }
  lane.Close();
  EXPECT_FALSE(lane.Pop(&event));
  const IngestQueueStats stats = lane.Stats();
  EXPECT_EQ(stats.accepted, 5);
  EXPECT_EQ(stats.delivered, 5);
  EXPECT_EQ(stats.depth_high_water, 5);
}

TEST(SpscLaneTest, PopBatchDrainsInOrder) {
  SpscLane lane(16);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(lane.Push(DataEvent(0, i)));
  std::vector<IngestEvent> batch;
  EXPECT_EQ(lane.PopBatch(&batch, 4), 4u);
  ASSERT_EQ(batch.size(), 4u);
  EXPECT_EQ(batch.front().timestamp, 0);
  EXPECT_EQ(batch.back().timestamp, 3);
  EXPECT_EQ(lane.PopBatch(&batch, 100), 6u);
  EXPECT_EQ(batch.front().timestamp, 4);
  EXPECT_EQ(batch.back().timestamp, 9);
}

TEST(SpscLaneTest, CloseDrainsRemainingEvents) {
  SpscLane lane(4);
  ASSERT_TRUE(lane.Push(DataEvent(0, 1)));
  ASSERT_TRUE(lane.Push(DataEvent(0, 2)));
  lane.Close();
  EXPECT_FALSE(lane.Push(DataEvent(0, 3)));
  IngestEvent event;
  EXPECT_TRUE(lane.Pop(&event));
  EXPECT_TRUE(lane.Pop(&event));
  EXPECT_FALSE(lane.Pop(&event));
  EXPECT_EQ(lane.Stats().accepted, 2);
  EXPECT_EQ(lane.Stats().delivered, 2);
}

TEST(SpscLaneTest, KeepStampSurvivesForwarding) {
  SpscLane lane(2);
  IngestEvent stamped = DataEvent(0, 1);
  stamped.enqueue_micros = 12345;
  stamped.keep_stamp = true;
  ASSERT_TRUE(lane.Push(std::move(stamped)));
  IngestEvent fresh = DataEvent(0, 2);  // keep_stamp false: Push restamps.
  fresh.enqueue_micros = -777;  // A restamp (>= 0) must replace this.
  ASSERT_TRUE(lane.Push(std::move(fresh)));
  IngestEvent event;
  ASSERT_TRUE(lane.Pop(&event));
  EXPECT_EQ(event.enqueue_micros, 12345);
  ASSERT_TRUE(lane.Pop(&event));
  EXPECT_GE(event.enqueue_micros, 0);
}

TEST(SpscLaneTest, BackpressureBlocksProducerUntilPop) {
  SpscLane lane(1);
  ASSERT_TRUE(lane.Push(DataEvent(0, 1)));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(lane.Push(DataEvent(0, 2)));
    second_pushed.store(true);
  });
  // producer_waits is bumped before the blocking wait, so spinning on it
  // guarantees the producer actually observed a full lane.
  while (lane.Stats().producer_waits < 1) std::this_thread::yield();
  EXPECT_FALSE(second_pushed.load());
  IngestEvent event;
  ASSERT_TRUE(lane.Pop(&event));
  EXPECT_EQ(event.timestamp, 1);
  ASSERT_TRUE(lane.Pop(&event));
  EXPECT_EQ(event.timestamp, 2);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
}

// TSan payload: a small lane hammered from both ends. Order and
// losslessness are asserted; the interesting part is the data-race-free
// handoff of the slot contents under wraparound and sleep/wake cycles.
TEST(SpscLaneStressTest, ThreadedProducerConsumerIsLosslessAndOrdered) {
  constexpr int kEvents = 20000;
  SpscLane lane(7);  // Non-power-of-two to exercise the modulo wrap.
  std::thread producer([&] {
    for (int i = 0; i < kEvents; ++i) {
      ASSERT_TRUE(lane.Push(DataEvent(i % 3, i)));
    }
    lane.Close();
  });
  std::vector<IngestEvent> batch;
  int expected = 0;
  while (lane.PopBatch(&batch, 64) > 0) {
    for (const IngestEvent& event : batch) {
      ASSERT_EQ(event.timestamp, expected);
      ++expected;
    }
  }
  producer.join();
  EXPECT_EQ(expected, kEvents);
  EXPECT_EQ(lane.Stats().accepted, kEvents);
  EXPECT_EQ(lane.Stats().delivered, kEvents);
}

// --- IngestOrderAudit ------------------------------------------------------

TEST(IngestOrderAuditTest, CountsGapsAndResyncs) {
  IngestOrderAudit audit;
  audit.Reset(2);
  EXPECT_TRUE(audit.ObserveInOrder(0, 1));
  EXPECT_TRUE(audit.ObserveInOrder(0, 2));
  EXPECT_TRUE(audit.ObserveInOrder(1, 1));
  EXPECT_FALSE(audit.ObserveInOrder(0, 5));  // Gap: expected 3.
  EXPECT_TRUE(audit.ObserveInOrder(0, 6));   // Resynced.
  EXPECT_FALSE(audit.ObserveInOrder(1, 1));  // Replay: expected 2.
  EXPECT_EQ(audit.violations(), 2);
}

// --- PlanShardAssignment ---------------------------------------------------

TEST(ShardAssignmentTest, RoundRobinMatchesModulo) {
  const std::vector<int64_t> weights = {5, 1, 9, 2, 7};
  const ShardPlan plan =
      PlanShardAssignment(weights, 2, ShardAssignment::kRoundRobin);
  EXPECT_EQ(plan.stream_to_shard, (std::vector<int>{0, 1, 0, 1, 0}));
  EXPECT_EQ(plan.shard_streams[0], (std::vector<int>{0, 2, 4}));
  EXPECT_EQ(plan.shard_streams[1], (std::vector<int>{1, 3}));
  EXPECT_EQ(plan.stream_to_local, (std::vector<int>{0, 0, 1, 1, 2}));
}

TEST(ShardAssignmentTest, LptBalancesSkewedWeights) {
  // One giant stream plus small ones: round-robin puts the giant and half
  // the rest on shard 0; LPT gives the giant its own shard.
  const std::vector<int64_t> weights = {100, 10, 10, 10, 10, 10};
  const ShardPlan rr =
      PlanShardAssignment(weights, 2, ShardAssignment::kRoundRobin);
  const ShardPlan lpt = PlanShardAssignment(weights, 2, ShardAssignment::kLpt);
  EXPECT_LT(lpt.imbalance_ratio, rr.imbalance_ratio);
  // Giant alone on its shard; every lighter stream lands on the other.
  const int giant_shard = lpt.stream_to_shard[0];
  for (int i = 1; i < 6; ++i) {
    EXPECT_NE(lpt.stream_to_shard[static_cast<size_t>(i)], giant_shard);
  }
  // Local indices stay ascending by global id within each shard.
  for (const auto& streams : lpt.shard_streams) {
    EXPECT_TRUE(std::is_sorted(streams.begin(), streams.end()));
  }
}

TEST(ShardAssignmentTest, LptIsDeterministicUnderTies) {
  const std::vector<int64_t> weights = {3, 3, 3, 3};
  const ShardPlan a = PlanShardAssignment(weights, 2, ShardAssignment::kLpt);
  const ShardPlan b = PlanShardAssignment(weights, 2, ShardAssignment::kLpt);
  EXPECT_EQ(a.stream_to_shard, b.stream_to_shard);
  EXPECT_EQ(a.stream_to_local, b.stream_to_local);
  EXPECT_DOUBLE_EQ(a.imbalance_ratio, 1.0);
}

// --- Equivalence with the sequential engine --------------------------------

struct Workload {
  std::vector<Graph> queries;
  std::vector<GraphStream> streams;
};

Workload RandomWorkload(int num_streams, int num_timestamps, uint64_t seed) {
  SyntheticStreamParams params;
  params.num_pairs = num_streams;
  params.evolution.num_timestamps = num_timestamps;
  params.evolution.p_appear = 0.25;
  params.evolution.p_disappear = 0.2;
  params.evolution.extra_pair_fraction = 3.0;
  params.seed = seed;
  StreamDataset dataset = MakeSyntheticStreams(params);
  return Workload{std::move(dataset.queries), std::move(dataset.streams)};
}

int Horizon(const Workload& workload) {
  int horizon = 0;
  for (const GraphStream& s : workload.streams) {
    horizon = std::max(horizon, s.NumTimestamps());
  }
  return horizon;
}

// Pushes one stream's timestamp batch as `fragments` events so the worker
// must coalesce them back into one batch before NNT maintenance.
void IngestSplit(PipelinedQueryEngine& engine, int stream, int timestamp,
                 const GraphChange& change, int fragments) {
  const size_t n = change.ops.size();
  const size_t per = n / static_cast<size_t>(fragments) + 1;
  size_t begin = 0;
  for (int f = 0; f < fragments; ++f) {
    const size_t end = std::min(n, begin + per);
    IngestEvent event;
    event.stream = stream;
    event.timestamp = timestamp;
    event.change.ops.assign(change.ops.begin() + begin,
                            change.ops.begin() + end);
    ASSERT_TRUE(engine.Ingest(std::move(event)));
    begin = end;
  }
}

// Runs both engines over the workload and asserts identical candidate
// pairs AND transitions at every epoch.
void ExpectEquivalent(const Workload& workload, int num_threads,
                      size_t lane_capacity, int fragments,
                      ShardAssignment assignment = ShardAssignment::kLpt) {
  ContinuousQueryEngine sequential(EngineOptions{});

  PipelinedEngineOptions options;
  options.num_threads = num_threads;
  options.lane_capacity = lane_capacity;
  options.assignment = assignment;
  PipelinedQueryEngine pipelined(options);

  for (const Graph& q : workload.queries) {
    sequential.AddQuery(q);
    pipelined.AddQuery(q);
  }
  for (const GraphStream& s : workload.streams) {
    sequential.AddStream(s.StartGraph());
    pipelined.AddStream(s.StartGraph());
  }
  sequential.Start();
  pipelined.Start();  // Completes epoch 0.

  const int num_streams = static_cast<int>(workload.streams.size());
  ASSERT_EQ(pipelined.AllCandidatePairs(), sequential.AllCandidatePairs());
  for (int t = 1; t < Horizon(workload); ++t) {
    for (int i = 0; i < num_streams; ++i) {
      const GraphStream& s = workload.streams[static_cast<size_t>(i)];
      const GraphChange change =
          t < s.NumTimestamps() ? s.ChangeAt(t) : GraphChange{};
      sequential.ApplyChange(i, change);
      IngestSplit(pipelined, i, t, change, fragments);
    }
    pipelined.AdvanceEpoch(t);
    ASSERT_EQ(pipelined.AllCandidatePairs(), sequential.AllCandidatePairs())
        << "threads=" << num_threads << " lane=" << lane_capacity
        << " frags=" << fragments << " t=" << t;
    for (int i = 0; i < num_streams; ++i) {
      std::vector<int> seq_current = sequential.CandidatesForStream(i);
      std::vector<int> pipe_current = pipelined.CandidatesForStream(i);
      CandidateTransitions seq_tr, pipe_tr;
      sequential.ObserveTransitions(i, &seq_current, &seq_tr);
      pipelined.ObserveTransitions(i, &pipe_current, &pipe_tr);
      ASSERT_EQ(pipe_tr.appeared, seq_tr.appeared) << "stream " << i;
      ASSERT_EQ(pipe_tr.disappeared, seq_tr.disappeared) << "stream " << i;
    }
  }
  pipelined.Shutdown();
  // Per-lane audits: every routed event applied, in per-stream timestamp
  // order, across every lane.
  int64_t applied_events = 0;
  for (int s = 0; s < pipelined.num_shards(); ++s) {
    const PipelinedQueryEngine::LaneReport report = pipelined.ReportLane(s);
    EXPECT_EQ(report.order_violations, 0) << "shard " << s;
    EXPECT_EQ(report.lane.accepted, report.lane.delivered) << "shard " << s;
    applied_events += report.applied_events;
  }
  EXPECT_EQ(applied_events,
            static_cast<int64_t>(num_streams) * (Horizon(workload) - 1) *
                fragments);
}

TEST(PipelinedEngineTest, MatchesSequentialAcrossThreadCounts) {
  const Workload workload = RandomWorkload(/*num_streams=*/9,
                                           /*num_timestamps=*/12,
                                           /*seed=*/77);
  // 1 = degenerate single worker; 4 < streams; 12 > streams.
  for (const int threads : {1, 4, 12}) {
    ExpectEquivalent(workload, threads, /*lane_capacity=*/64, /*fragments=*/1);
  }
}

TEST(PipelinedEngineTest, MatchesSequentialWithFragmentedBatches) {
  const Workload workload = RandomWorkload(6, 10, 31);
  ExpectEquivalent(workload, 3, /*lane_capacity=*/64, /*fragments=*/3);
}

TEST(PipelinedEngineTest, MatchesSequentialUnderFullBackpressure) {
  // Capacity-1 lanes: the router blocks on every forward, so the protocol
  // is exercised with maximal handoff contention.
  const Workload workload = RandomWorkload(5, 8, 13);
  ExpectEquivalent(workload, 2, /*lane_capacity=*/1, /*fragments=*/2);
}

TEST(PipelinedEngineTest, RoundRobinAssignmentIsOutputIdentical) {
  const Workload workload = RandomWorkload(6, 8, 5);
  ExpectEquivalent(workload, 3, 64, 1, ShardAssignment::kRoundRobin);
}

TEST(PipelinedEngineTest, MatchesSequentialOnManyRandomSeeds) {
  for (const uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const Workload workload = RandomWorkload(6, 8, seed);
    ExpectEquivalent(workload, 3, 32, 2);
  }
}

// --- Dynamic churn through the in-band control channel ---------------------

TEST(PipelinedEngineTest, DynamicChurnMatchesSequential) {
  const Workload workload = RandomWorkload(6, 10, 42);
  ContinuousQueryEngine sequential(EngineOptions{});
  PipelinedEngineOptions options;
  options.num_threads = 3;
  PipelinedQueryEngine pipelined(options);
  for (const Graph& q : workload.queries) {
    sequential.AddQuery(q);
    pipelined.AddQuery(q);
  }
  for (const GraphStream& s : workload.streams) {
    sequential.AddStream(s.StartGraph());
    pipelined.AddStream(s.StartGraph());
  }
  sequential.Start();
  pipelined.Start();

  const int num_streams = static_cast<int>(workload.streams.size());
  int added_id = -1;
  for (int t = 1; t < Horizon(workload); ++t) {
    for (int i = 0; i < num_streams; ++i) {
      const GraphStream& s = workload.streams[static_cast<size_t>(i)];
      const GraphChange change =
          t < s.NumTimestamps() ? s.ChangeAt(t) : GraphChange{};
      sequential.ApplyChange(i, change);
      IngestSplit(pipelined, i, t, change, 2);
    }
    // Interleave churn with in-flight data: ops land between this epoch's
    // data and its marker, at the same history point on both engines only
    // after the epoch completes — so churn here, then advance.
    if (t == 3) {
      const int seq_id = sequential.AddQueryDynamic(workload.queries[0]);
      added_id = pipelined.AddQueryDynamic(workload.queries[0]);
      EXPECT_EQ(added_id, seq_id);
    }
    if (t == 6) {
      sequential.RemoveQueryDynamic(added_id);
      pipelined.RemoveQueryDynamic(added_id);
      sequential.RemoveQueryDynamic(1);
      pipelined.RemoveQueryDynamic(1);
    }
    if (t == 8) {
      // Slot reuse: the most recently retired slot comes back.
      const int seq_id = sequential.AddQueryDynamic(workload.queries[2]);
      const int pipe_id = pipelined.AddQueryDynamic(workload.queries[2]);
      EXPECT_EQ(pipe_id, seq_id);
    }
    pipelined.AdvanceEpoch(t);
    ASSERT_EQ(pipelined.AllCandidatePairs(), sequential.AllCandidatePairs())
        << "t=" << t;
    EXPECT_EQ(pipelined.num_queries(), sequential.num_queries());
  }
  pipelined.CheckChurnInvariants();
  sequential.CheckChurnInvariants();
  pipelined.Shutdown();
}

// --- Watermarks and epoch snapshots ----------------------------------------

TEST(PipelinedEngineTest, WatermarksAdvanceMonotonically) {
  const Workload workload = RandomWorkload(4, 8, 9);
  PipelinedEngineOptions options;
  options.num_threads = 2;
  PipelinedQueryEngine engine(options);
  for (const Graph& q : workload.queries) engine.AddQuery(q);
  for (const GraphStream& s : workload.streams) {
    engine.AddStream(s.StartGraph());
  }
  engine.Start();
  EXPECT_EQ(engine.epoch(), 0);
  for (int t = 1; t < Horizon(workload); ++t) {
    for (size_t i = 0; i < workload.streams.size(); ++i) {
      const GraphStream& s = workload.streams[i];
      IngestEvent event;
      event.stream = static_cast<int32_t>(i);
      event.timestamp = t;
      if (t < s.NumTimestamps()) event.change = s.ChangeAt(t);
      ASSERT_TRUE(engine.Ingest(std::move(event)));
    }
    engine.AdvanceEpoch(t);
    EXPECT_EQ(engine.epoch(), t);
    for (int s = 0; s < engine.num_shards(); ++s) {
      EXPECT_GE(engine.ReportLane(s).watermark, t) << "shard " << s;
    }
  }
  engine.Shutdown();
  // Events pushed after the last marker are applied on shutdown drain, so
  // nothing accepted is ever lost.
  for (int s = 0; s < engine.num_shards(); ++s) {
    const PipelinedQueryEngine::LaneReport report = engine.ReportLane(s);
    EXPECT_EQ(report.lane.accepted, report.lane.delivered);
    EXPECT_EQ(report.order_violations, 0);
  }
}

TEST(PipelinedEngineTest, CandidatesForStreamMatchesMergedPairs) {
  const Workload workload = RandomWorkload(5, 6, 21);
  PipelinedEngineOptions options;
  options.num_threads = 3;
  PipelinedQueryEngine engine(options);
  for (const Graph& q : workload.queries) engine.AddQuery(q);
  for (const GraphStream& s : workload.streams) {
    engine.AddStream(s.StartGraph());
  }
  engine.Start();
  std::vector<std::pair<int, int>> rebuilt;
  for (int i = 0; i < engine.num_streams(); ++i) {
    for (const int q : engine.CandidatesForStream(i)) {
      rebuilt.emplace_back(i, q);
    }
  }
  EXPECT_EQ(rebuilt, engine.AllCandidatePairs());
  engine.Shutdown();
}

// --- The barrier engine under LPT placement --------------------------------

TEST(ParallelEngineLptTest, LptPlacementIsOutputIdenticalToSequential) {
  const Workload workload = RandomWorkload(7, 8, 17);
  ContinuousQueryEngine sequential(EngineOptions{});
  ParallelEngineOptions options;
  options.num_threads = 3;
  options.assignment = ShardAssignment::kLpt;
  ParallelQueryEngine parallel(options);
  for (const Graph& q : workload.queries) {
    sequential.AddQuery(q);
    parallel.AddQuery(q);
  }
  for (const GraphStream& s : workload.streams) {
    sequential.AddStream(s.StartGraph());
    parallel.AddStream(s.StartGraph());
  }
  sequential.Start();
  parallel.Start();
  const int num_streams = static_cast<int>(workload.streams.size());
  std::vector<GraphChange> batches(static_cast<size_t>(num_streams));
  for (int t = 1; t < Horizon(workload); ++t) {
    for (int i = 0; i < num_streams; ++i) {
      const GraphStream& s = workload.streams[static_cast<size_t>(i)];
      batches[static_cast<size_t>(i)] =
          t < s.NumTimestamps() ? s.ChangeAt(t) : GraphChange{};
      sequential.ApplyChange(i, batches[static_cast<size_t>(i)]);
    }
    parallel.ApplyChanges(batches);
    ASSERT_EQ(parallel.AllCandidatePairs(), sequential.AllCandidatePairs())
        << "t=" << t;
  }
}

}  // namespace
}  // namespace gsps
