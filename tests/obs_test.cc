// Tests for the observability layer (gsps/obs/): histogram bucket
// boundaries, single-writer sink merge algebra (commutative, empty-merge
// identity), registry merge-and-reset, serializer shape (Prometheus text
// and JSON), trace_event JSON well-formedness (parsed back by a minimal
// JSON parser), and an end-to-end run of the instrumented parallel engine
// that must leave every counter, gauge, and histogram nonzero.

#include "gsps/obs/obs.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gsps/engine/candidate_tracker.h"
#include "gsps/engine/parallel_query_engine.h"
#include "gsps/gen/stream_generator.h"
#include "gsps/graph/graph_change.h"
#include "gsps/join/dominance_kernel.h"

namespace gsps {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Hist;
using obs::HistogramData;
using obs::MetricSink;

// --- Minimal JSON parser ---------------------------------------------------
// Just enough of RFC 8259 to prove the emitted metrics/trace JSON is
// syntactically well-formed (Perfetto and Prometheus scrapers parse it with
// real parsers; a substring check alone would not catch a stray comma).

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Valid() {
    pos_ = 0;
    if (!ParseValue()) return false;
    SkipWhitespace();
    return pos_ == text_.size();
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseLiteral(const char* literal) {
    const size_t n = std::string(literal).size();
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  bool ParseString() {
    if (!Consume('"')) return false;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;  // Skip the escaped character.
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // Closing quote.
    return true;
  }

  bool ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool ParseObject() {
    if (!Consume('{')) return false;
    if (Consume('}')) return true;
    do {
      SkipWhitespace();
      if (!ParseString()) return false;
      if (!Consume(':')) return false;
      if (!ParseValue()) return false;
    } while (Consume(','));
    return Consume('}');
  }

  bool ParseArray() {
    if (!Consume('[')) return false;
    if (Consume(']')) return true;
    do {
      if (!ParseValue()) return false;
    } while (Consume(','));
    return Consume(']');
  }

  bool ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
        return ParseLiteral("true");
      case 'f':
        return ParseLiteral("false");
      case 'n':
        return ParseLiteral("null");
      default:
        return ParseNumber();
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

int CountOccurrences(const std::string& haystack, const std::string& needle) {
  int count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

// --- Histogram buckets -----------------------------------------------------

TEST(ObsHistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  // Each bound is the last value of its own bucket; bound + 1 spills into
  // the next one. Everything above the top bound lands in +Inf.
  for (size_t b = 0; b < obs::kHistBucketBounds.size(); ++b) {
    const int64_t bound = obs::kHistBucketBounds[b];
    EXPECT_EQ(HistogramData::BucketIndex(bound), static_cast<int>(b))
        << "bound " << bound;
    EXPECT_EQ(HistogramData::BucketIndex(bound + 1), static_cast<int>(b) + 1)
        << "bound " << bound;
  }
  EXPECT_EQ(HistogramData::BucketIndex(0), 0);
  EXPECT_EQ(HistogramData::BucketIndex(-5), 0);
  EXPECT_EQ(HistogramData::BucketIndex(INT64_MAX),
            static_cast<int>(obs::kHistBucketBounds.size()));
}

TEST(ObsHistogramTest, ObserveTracksBucketsCountAndSum) {
  HistogramData h;
  h.Observe(1);        // Bucket 0 (le=1).
  h.Observe(2);        // Bucket 1 (le=4).
  h.Observe(4);        // Bucket 1.
  h.Observe(5000000);  // +Inf overflow.
  EXPECT_EQ(h.buckets[0], 1);
  EXPECT_EQ(h.buckets[1], 2);
  EXPECT_EQ(h.buckets[obs::kHistBucketBounds.size()], 1);
  EXPECT_EQ(h.count, 4);
  EXPECT_EQ(h.sum, 5000007);
}

TEST(ObsHistogramTest, MergeAddsBucketwise) {
  HistogramData a, b;
  a.Observe(3);
  a.Observe(100);
  b.Observe(3);
  HistogramData merged = a;
  merged.MergeFrom(b);
  EXPECT_EQ(merged.count, 3);
  EXPECT_EQ(merged.sum, 106);
  EXPECT_EQ(merged.buckets[HistogramData::BucketIndex(3)], 2);
  EXPECT_EQ(merged.buckets[HistogramData::BucketIndex(100)], 1);
}

// --- Sink merge algebra ----------------------------------------------------

MetricSink SampleSinkA() {
  MetricSink s;
  s.Add(Counter::kNntInsertEdges, 3);
  s.Add(Counter::kJoinPairsIn, 10);
  s.Set(Gauge::kPoolQueueDepth, 4);
  s.Set(Gauge::kEngineShards, 2);
  s.Observe(Hist::kUpdateBatchMicros, 17);
  return s;
}

MetricSink SampleSinkB() {
  MetricSink s;
  s.Add(Counter::kNntInsertEdges, 5);
  s.Add(Counter::kTrackerAppeared, 1);
  s.Set(Gauge::kPoolQueueDepth, 2);
  s.Set(Gauge::kEngineQueries, 9);
  s.Observe(Hist::kUpdateBatchMicros, 40000);
  s.Observe(Hist::kJoinBatchMicros, 8);
  return s;
}

TEST(ObsSinkTest, MergeSumsCountersMaxesGauges) {
  MetricSink merged = SampleSinkA();
  merged.MergeFrom(SampleSinkB());
  EXPECT_EQ(merged.Value(Counter::kNntInsertEdges), 8);
  EXPECT_EQ(merged.Value(Counter::kJoinPairsIn), 10);
  EXPECT_EQ(merged.Value(Counter::kTrackerAppeared), 1);
  EXPECT_EQ(merged.GaugeValue(Gauge::kPoolQueueDepth), 4);  // max(4, 2)
  EXPECT_EQ(merged.GaugeValue(Gauge::kEngineShards), 2);
  EXPECT_EQ(merged.GaugeValue(Gauge::kEngineQueries), 9);
  EXPECT_EQ(merged.histogram(Hist::kUpdateBatchMicros).count, 2);
  EXPECT_EQ(merged.histogram(Hist::kJoinBatchMicros).count, 1);
}

TEST(ObsSinkTest, MergeIsCommutative) {
  // Shards are merged in whatever order barriers complete; the aggregate
  // must not depend on it.
  MetricSink ab = SampleSinkA();
  ab.MergeFrom(SampleSinkB());
  MetricSink ba = SampleSinkB();
  ba.MergeFrom(SampleSinkA());
  EXPECT_EQ(ab, ba);
}

TEST(ObsSinkTest, MergingAnEmptySinkIsIdentity) {
  MetricSink merged = SampleSinkA();
  merged.MergeFrom(MetricSink{});
  EXPECT_EQ(merged, SampleSinkA());

  MetricSink from_empty;
  from_empty.MergeFrom(SampleSinkA());
  EXPECT_EQ(from_empty, SampleSinkA());
}

TEST(ObsSinkTest, RegistryMergeAndResetDrainsTheSink) {
  obs::MetricsRegistry::Global().Reset();
  MetricSink sink = SampleSinkA();
  obs::MetricsRegistry::Global().MergeAndReset(sink);
  EXPECT_EQ(sink, MetricSink{}) << "sink must be zeroed after the merge";
  obs::MetricsRegistry::Global().MergeAndReset(sink);  // No-op second merge.
  const MetricSink snapshot = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snapshot, SampleSinkA());
  obs::MetricsRegistry::Global().Reset();
  EXPECT_EQ(obs::MetricsRegistry::Global().Snapshot(), MetricSink{});
}

// --- Serializers -----------------------------------------------------------

TEST(ObsSerializerTest, PrometheusTextShape) {
  MetricSink sink;
  sink.Add(Counter::kNntInsertEdges, 7);
  sink.Set(Gauge::kEngineStreams, 5);
  sink.Observe(Hist::kJoinBatchMicros, 1);   // le="1".
  sink.Observe(Hist::kJoinBatchMicros, 3);   // le="4".
  sink.Observe(Hist::kJoinBatchMicros, 99);  // le="256".
  const std::string text = obs::ToPrometheusText(sink);

  EXPECT_NE(text.find("# TYPE gsps_nnt_insert_edges_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("gsps_nnt_insert_edges_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE gsps_engine_streams gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("gsps_engine_streams 5\n"), std::string::npos);

  // Buckets are cumulative: le="1" holds 1, le="4" holds 2, le="64" still 2,
  // le="256" jumps to 3, and +Inf equals _count.
  EXPECT_NE(text.find("gsps_join_batch_micros_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("gsps_join_batch_micros_bucket{le=\"4\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("gsps_join_batch_micros_bucket{le=\"64\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("gsps_join_batch_micros_bucket{le=\"256\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("gsps_join_batch_micros_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("gsps_join_batch_micros_sum 103\n"), std::string::npos);
  EXPECT_NE(text.find("gsps_join_batch_micros_count 3\n"), std::string::npos);

  // Every counter appears with the _total suffix even when zero.
  EXPECT_EQ(CountOccurrences(text, "_total counter\n"),
            static_cast<int>(obs::kNumCounters));
}

TEST(ObsSerializerTest, MetricsJsonParsesBack) {
  MetricSink sink = SampleSinkA();
  sink.MergeFrom(SampleSinkB());
  const std::string json = obs::ToMetricsJson(sink);
  JsonParser parser(json);
  EXPECT_TRUE(parser.Valid()) << json;
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
  EXPECT_NE(json.find("\"gsps_nnt_insert_edges\":8"), std::string::npos);
  EXPECT_NE(json.find("\"le\":\"+Inf\""), std::string::npos);
}

// --- Scoped context --------------------------------------------------------

TEST(ObsContextTest, ScopedContextInstallsNestsAndRestores) {
  EXPECT_EQ(obs::CurrentSink(), nullptr);
  MetricSink outer_sink, inner_sink;
  {
    obs::ScopedObsContext outer(&outer_sink, nullptr);
    EXPECT_EQ(obs::CurrentSink(), &outer_sink);
    {
      obs::ScopedObsContext inner(&inner_sink, nullptr);
      EXPECT_EQ(obs::CurrentSink(), &inner_sink);
      GSPS_OBS_COUNT(Counter::kNntInsertEdges, 2);
    }
    EXPECT_EQ(obs::CurrentSink(), &outer_sink);
    GSPS_OBS_COUNT(Counter::kNntInsertEdges, 1);
  }
  EXPECT_EQ(obs::CurrentSink(), nullptr);
  GSPS_OBS_COUNT(Counter::kNntInsertEdges, 100);  // No context: dropped.
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(inner_sink.Value(Counter::kNntInsertEdges), 2);
    EXPECT_EQ(outer_sink.Value(Counter::kNntInsertEdges), 1);
  } else {
    EXPECT_EQ(inner_sink.Value(Counter::kNntInsertEdges), 0);
    EXPECT_EQ(outer_sink.Value(Counter::kNntInsertEdges), 0);
  }
}

// --- Trace JSON ------------------------------------------------------------

TEST(ObsTraceTest, TraceJsonParsesBackWithAllSpans) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Clear();
  tracer.Enable();
  ASSERT_TRUE(tracer.enabled());
  obs::TraceBuffer* driver = tracer.NewBuffer(/*tid=*/0);
  obs::TraceBuffer* shard = tracer.NewBuffer(/*tid=*/1);
  ASSERT_NE(driver, nullptr);
  ASSERT_NE(shard, nullptr);

  {
    // ScopedSpan works in both build modes; only the GSPS_OBS_SPAN macro is
    // compiled out under GSPS_OBS_DISABLED.
    obs::ScopedObsContext scope(nullptr, driver);
    obs::ScopedSpan span("tick", "monitor");
  }
  shard->Record("shard_update", "engine", 5, 10);
  shard->Record("shard_join", "engine", 20, 2);

  const std::string json = tracer.ToJson();
  JsonParser parser(json);
  EXPECT_TRUE(parser.Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"X\""), 3);
  EXPECT_EQ(CountOccurrences(json, "\"tid\":0"), 1);
  EXPECT_EQ(CountOccurrences(json, "\"tid\":1"), 2);
  EXPECT_NE(json.find("\"name\":\"tick\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"engine\""), std::string::npos);
  EXPECT_EQ(CountOccurrences(json, "\"pid\":1"), 3);

  tracer.Clear();
  EXPECT_FALSE(tracer.enabled());
  EXPECT_EQ(tracer.NewBuffer(2), nullptr) << "disabled tracer hands out null";
  const std::string empty = tracer.ToJson();
  JsonParser empty_parser(empty);
  EXPECT_TRUE(empty_parser.Valid()) << empty;
  EXPECT_EQ(CountOccurrences(empty, "\"ph\":\"X\""), 0);
}

// --- End to end: the instrumented engine -----------------------------------

// Runs the sharded engine (updates + joins) over an evolving workload for
// one join strategy, recording driver-thread metrics into `root_sink` and
// shard metrics into the registry (the engine's own barrier bookkeeping).
void DriveEngine(const StreamDataset& dataset, JoinKind kind,
                 MetricSink& root_sink) {
  obs::ScopedObsContext scope(&root_sink, nullptr);
  ParallelEngineOptions options;
  options.engine.join_kind = kind;
  options.engine.nnt_depth = 3;
  options.num_threads = 2;
  ParallelQueryEngine engine(options);
  for (const Graph& q : dataset.queries) engine.AddQuery(q);
  int horizon = 0;
  for (const GraphStream& s : dataset.streams) {
    engine.AddStream(s.StartGraph());
    horizon = std::max(horizon, s.NumTimestamps());
  }
  engine.Start();
  std::vector<GraphChange> batches(dataset.streams.size());
  for (int t = 1; t < horizon; ++t) {
    for (size_t i = 0; i < dataset.streams.size(); ++i) {
      const GraphStream& s = dataset.streams[i];
      batches[i] = t < s.NumTimestamps() ? s.ChangeAt(t) : GraphChange{};
    }
    engine.ApplyChanges(batches);
    engine.AllCandidatePairs();
    // A second read with no intervening deltas is answered from the
    // per-stream verdict caches (gsps_join_verdicts_reused).
    engine.AllCandidatePairs();
  }
  // Dynamic churn: a query over labels no synthetic query uses introduces
  // fresh dimensions, forcing a dim-remap regrowth in every strategy
  // (gsps_remap_regrowths); the remove exercises slot retirement and the
  // gsps_queries_active gauge.
  Graph churn_query;
  churn_query.EnsureVertex(0, 91);
  churn_query.EnsureVertex(1, 92);
  churn_query.AddEdge(0, 1, 93);
  const int churn_id = engine.AddQueryDynamic(churn_query);
  engine.AllCandidatePairs();
  engine.RemoveQueryDynamic(churn_id);
  engine.AllCandidatePairs();
}

TEST(ObsEndToEndTest, EveryMetricNonzeroAfterInstrumentedRun) {
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "instrumentation compiled out (GSPS_OBS_DISABLED)";
  }
  obs::MetricsRegistry::Global().Reset();

  SyntheticStreamParams params;
  params.num_pairs = 6;
  params.evolution.num_timestamps = 10;
  params.evolution.p_appear = 0.25;
  params.evolution.p_disappear = 0.2;
  params.evolution.extra_pair_fraction = 3.0;
  params.seed = 7;
  const StreamDataset dataset = MakeSyntheticStreams(params);

  MetricSink root_sink;
  // All three strategies so NL/Skyline (dominance tests, early stops) and
  // DSC (set-cover rounds/flips) counters all fire.
  DriveEngine(dataset, JoinKind::kNestedLoop, root_sink);
  DriveEngine(dataset, JoinKind::kDominatedSetCover, root_sink);
  DriveEngine(dataset, JoinKind::kSkylineEarlyStop, root_sink);

  // Candidate transitions, driven deterministically.
  {
    obs::ScopedObsContext scope(&root_sink, nullptr);
    CandidateTracker tracker(1);
    tracker.Observe(0, {0, 1});
    tracker.Observe(0, {1, 2});  // q0 disappears, q2 appears.
  }

  // The engine runs bump only the dispatched ISA's batch counter; drive the
  // other supported ISAs through forced batches the way the kernel bench
  // does. Unsupported ISAs stay at zero and are exempted below.
  {
    obs::ScopedObsContext scope(&root_sink, nullptr);
    std::vector<NpvEntry> needle = {NpvEntry{0, 1}};
    NpvSlab slab;
    slab.Append(needle);
    for (int i = 0; i < kNumDominanceIsas; ++i) {
      const DominanceIsa isa = static_cast<DominanceIsa>(i);
      if (!DominanceIsaSupported(isa)) continue;
      DominanceBatch batch(isa);
      batch.Bind(slab, 1);
      DominanceKernelStats stats;
      batch.ComputeMask(needle.data(), needle.data() + needle.size(),
                        slab.signature(0), &stats);
      obs::CurrentSink()->Add(batch.batch_counter(), stats.batches);
    }
  }

  obs::MetricsRegistry::Global().MergeAndReset(root_sink);
  const MetricSink snapshot = obs::MetricsRegistry::Global().Snapshot();
  for (int i = 0; i < obs::kNumCounters; ++i) {
    const Counter counter = static_cast<Counter>(i);
    if ((counter == Counter::kDominanceBatchesAvx2 &&
         !DominanceIsaSupported(DominanceIsa::kAvx2)) ||
        (counter == Counter::kDominanceBatchesAvx512 &&
         !DominanceIsaSupported(DominanceIsa::kAvx512))) {
      EXPECT_EQ(snapshot.Value(counter), 0) << obs::CounterName(counter);
      continue;
    }
    EXPECT_GT(snapshot.Value(counter), 0) << obs::CounterName(counter);
  }
  for (int i = 0; i < obs::kNumGauges; ++i) {
    const Gauge gauge = static_cast<Gauge>(i);
    EXPECT_GT(snapshot.GaugeValue(gauge), 0) << obs::GaugeName(gauge);
  }
  for (int i = 0; i < obs::kNumHists; ++i) {
    const Hist hist = static_cast<Hist>(i);
    EXPECT_GT(snapshot.histogram(hist).count, 0) << obs::HistName(hist);
  }
  obs::MetricsRegistry::Global().Reset();
}

}  // namespace
}  // namespace gsps
