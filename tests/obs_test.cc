// Tests for the observability layer (gsps/obs/): histogram bucket
// boundaries, single-writer sink merge algebra (commutative, empty-merge
// identity), registry merge-and-reset, serializer shape (Prometheus text
// and JSON), trace_event JSON well-formedness (parsed back by a minimal
// JSON parser), and an end-to-end run of the instrumented parallel engine
// that must leave every counter, gauge, and histogram nonzero.

#include "gsps/obs/obs.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "gsps/engine/candidate_tracker.h"
#include "gsps/engine/ingest_queue.h"
#include "gsps/engine/parallel_query_engine.h"
#include "gsps/engine/pipelined_query_engine.h"
#include "gsps/gen/stream_generator.h"
#include "gsps/graph/graph_change.h"
#include "gsps/join/dominance_kernel.h"
#include "gsps/obs/attribution.h"
#include "gsps/obs/exemplar.h"
#include "gsps/obs/window.h"
#include "test_json.h"

namespace gsps {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Hist;
using obs::HistogramData;
using obs::MetricSink;
using ::gsps::testing::CountOccurrences;
using ::gsps::testing::JsonParser;

// --- Histogram buckets -----------------------------------------------------

TEST(ObsHistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  // Each bound is the last value of its own bucket; bound + 1 spills into
  // the next one. Everything above the top bound lands in +Inf.
  for (size_t b = 0; b < obs::kHistBucketBounds.size(); ++b) {
    const int64_t bound = obs::kHistBucketBounds[b];
    EXPECT_EQ(HistogramData::BucketIndex(bound), static_cast<int>(b))
        << "bound " << bound;
    EXPECT_EQ(HistogramData::BucketIndex(bound + 1), static_cast<int>(b) + 1)
        << "bound " << bound;
  }
  EXPECT_EQ(HistogramData::BucketIndex(0), 0);
  EXPECT_EQ(HistogramData::BucketIndex(-5), 0);
  EXPECT_EQ(HistogramData::BucketIndex(INT64_MAX),
            static_cast<int>(obs::kHistBucketBounds.size()));
}

TEST(ObsHistogramTest, ObserveTracksBucketsCountAndSum) {
  HistogramData h;
  h.Observe(1);        // Bucket 0 (le=1).
  h.Observe(2);        // Bucket 1 (le=4).
  h.Observe(4);        // Bucket 1.
  h.Observe(5000000);  // +Inf overflow.
  EXPECT_EQ(h.buckets[0], 1);
  EXPECT_EQ(h.buckets[1], 2);
  EXPECT_EQ(h.buckets[obs::kHistBucketBounds.size()], 1);
  EXPECT_EQ(h.count, 4);
  EXPECT_EQ(h.sum, 5000007);
}

TEST(ObsHistogramTest, MergeAddsBucketwise) {
  HistogramData a, b;
  a.Observe(3);
  a.Observe(100);
  b.Observe(3);
  HistogramData merged = a;
  merged.MergeFrom(b);
  EXPECT_EQ(merged.count, 3);
  EXPECT_EQ(merged.sum, 106);
  EXPECT_EQ(merged.buckets[HistogramData::BucketIndex(3)], 2);
  EXPECT_EQ(merged.buckets[HistogramData::BucketIndex(100)], 1);
}

// --- Sink merge algebra ----------------------------------------------------

MetricSink SampleSinkA() {
  MetricSink s;
  s.Add(Counter::kNntInsertEdges, 3);
  s.Add(Counter::kJoinPairsIn, 10);
  s.Set(Gauge::kPoolQueueDepth, 4);
  s.Set(Gauge::kEngineShards, 2);
  s.Observe(Hist::kUpdateBatchMicros, 17);
  return s;
}

MetricSink SampleSinkB() {
  MetricSink s;
  s.Add(Counter::kNntInsertEdges, 5);
  s.Add(Counter::kTrackerAppeared, 1);
  s.Set(Gauge::kPoolQueueDepth, 2);
  s.Set(Gauge::kEngineQueries, 9);
  s.Observe(Hist::kUpdateBatchMicros, 40000);
  s.Observe(Hist::kJoinBatchMicros, 8);
  return s;
}

TEST(ObsSinkTest, MergeSumsCountersMaxesGauges) {
  MetricSink merged = SampleSinkA();
  merged.MergeFrom(SampleSinkB());
  EXPECT_EQ(merged.Value(Counter::kNntInsertEdges), 8);
  EXPECT_EQ(merged.Value(Counter::kJoinPairsIn), 10);
  EXPECT_EQ(merged.Value(Counter::kTrackerAppeared), 1);
  EXPECT_EQ(merged.GaugeValue(Gauge::kPoolQueueDepth), 4);  // max(4, 2)
  EXPECT_EQ(merged.GaugeValue(Gauge::kEngineShards), 2);
  EXPECT_EQ(merged.GaugeValue(Gauge::kEngineQueries), 9);
  EXPECT_EQ(merged.histogram(Hist::kUpdateBatchMicros).count, 2);
  EXPECT_EQ(merged.histogram(Hist::kJoinBatchMicros).count, 1);
}

TEST(ObsSinkTest, MergeIsCommutative) {
  // Shards are merged in whatever order barriers complete; the aggregate
  // must not depend on it.
  MetricSink ab = SampleSinkA();
  ab.MergeFrom(SampleSinkB());
  MetricSink ba = SampleSinkB();
  ba.MergeFrom(SampleSinkA());
  EXPECT_EQ(ab, ba);
}

TEST(ObsSinkTest, MergingAnEmptySinkIsIdentity) {
  MetricSink merged = SampleSinkA();
  merged.MergeFrom(MetricSink{});
  EXPECT_EQ(merged, SampleSinkA());

  MetricSink from_empty;
  from_empty.MergeFrom(SampleSinkA());
  EXPECT_EQ(from_empty, SampleSinkA());
}

TEST(ObsSinkTest, RegistryMergeAndResetDrainsTheSink) {
  obs::MetricsRegistry::Global().Reset();
  MetricSink sink = SampleSinkA();
  obs::MetricsRegistry::Global().MergeAndReset(sink);
  EXPECT_EQ(sink, MetricSink{}) << "sink must be zeroed after the merge";
  obs::MetricsRegistry::Global().MergeAndReset(sink);  // No-op second merge.
  const MetricSink snapshot = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snapshot, SampleSinkA());
  obs::MetricsRegistry::Global().Reset();
  EXPECT_EQ(obs::MetricsRegistry::Global().Snapshot(), MetricSink{});
}

// --- Serializers -----------------------------------------------------------

TEST(ObsSerializerTest, PrometheusTextShape) {
  // The serializer also reads the global window/attribution/exemplar state;
  // reset so the shape below is deterministic regardless of test order.
  obs::MetricsRegistry::Global().Reset();
  MetricSink sink;
  sink.Add(Counter::kNntInsertEdges, 7);
  sink.Set(Gauge::kEngineStreams, 5);
  sink.Observe(Hist::kJoinBatchMicros, 1);   // le="1".
  sink.Observe(Hist::kJoinBatchMicros, 3);   // le="4".
  sink.Observe(Hist::kJoinBatchMicros, 99);  // le="256".
  const std::string text = obs::ToPrometheusText(sink);

  EXPECT_NE(text.find("# TYPE gsps_nnt_insert_edges_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("gsps_nnt_insert_edges_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE gsps_engine_streams gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("gsps_engine_streams 5\n"), std::string::npos);

  // Buckets are cumulative: le="1" holds 1, le="4" holds 2, le="64" still 2,
  // le="256" jumps to 3, and +Inf equals _count.
  EXPECT_NE(text.find("gsps_join_batch_micros_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("gsps_join_batch_micros_bucket{le=\"4\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("gsps_join_batch_micros_bucket{le=\"64\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("gsps_join_batch_micros_bucket{le=\"256\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("gsps_join_batch_micros_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("gsps_join_batch_micros_sum 103\n"), std::string::npos);
  EXPECT_NE(text.find("gsps_join_batch_micros_count 3\n"), std::string::npos);

  // Every counter appears with the _total suffix even when zero, plus the
  // three always-emitted per-query attribution families.
  EXPECT_EQ(CountOccurrences(text, "_total counter\n"),
            static_cast<int>(obs::kNumCounters) + 3);

  // Exposition-format hygiene: every TYPE line is preceded by a HELP line
  // for the same family, and the build-identity gauge is present.
  EXPECT_EQ(CountOccurrences(text, "# HELP "),
            CountOccurrences(text, "# TYPE "));
  EXPECT_NE(text.find("# TYPE gsps_build_info gauge\n"), std::string::npos);
  EXPECT_NE(text.find("gsps_build_info{isa=\""), std::string::npos);
  EXPECT_NE(text.find("\",obs=\""), std::string::npos);

  // No window has closed since the reset, so the window gauges read zero.
  EXPECT_NE(text.find("gsps_window_seq 0\n"), std::string::npos);
  EXPECT_NE(text.find("gsps_window_events_per_sec 0\n"), std::string::npos);
  // One quantile series per histogram per quantile.
  EXPECT_EQ(CountOccurrences(text, "gsps_window_quantile_micros{hist=\""),
            static_cast<int>(obs::kNumHists) * 3);
  obs::MetricsRegistry::Global().Reset();
}

TEST(ObsSerializerTest, MetricsJsonParsesBack) {
  MetricSink sink = SampleSinkA();
  sink.MergeFrom(SampleSinkB());
  const std::string json = obs::ToMetricsJson(sink);
  JsonParser parser(json);
  EXPECT_TRUE(parser.Valid()) << json;
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
  EXPECT_NE(json.find("\"gsps_nnt_insert_edges\":8"), std::string::npos);
  EXPECT_NE(json.find("\"le\":\"+Inf\""), std::string::npos);
}

// --- Windowed telemetry ----------------------------------------------------

TEST(ObsWindowTest, HistogramQuantileInterpolatesAndClamps) {
  HistogramData empty;
  EXPECT_EQ(obs::HistogramQuantile(empty, 0.5), 0.0);

  // Four samples in the (1, 4] bucket: every quantile interpolates inside
  // that bucket's bounds.
  HistogramData h;
  for (int i = 0; i < 4; ++i) h.Observe(3);
  for (const double q : {0.25, 0.5, 0.95}) {
    const double v = obs::HistogramQuantile(h, q);
    EXPECT_GT(v, 1.0) << "q=" << q;
    EXPECT_LE(v, 4.0) << "q=" << q;
  }
  EXPECT_LT(obs::HistogramQuantile(h, 0.25), obs::HistogramQuantile(h, 0.95));

  // Samples in the +Inf overflow bucket clamp to the top finite bound.
  HistogramData inf;
  inf.Observe(obs::kHistBucketBounds.back() + 123);
  EXPECT_EQ(obs::HistogramQuantile(inf, 0.99),
            static_cast<double>(obs::kHistBucketBounds.back()));
}

TEST(ObsWindowTest, RatePerSecUsesWindowDuration) {
  obs::WindowSnapshot window;
  window.delta.Add(Counter::kNntInsertEdges, 500);
  window.duration_micros = 250000;  // 0.25 s.
  EXPECT_DOUBLE_EQ(obs::RatePerSec(window, Counter::kNntInsertEdges), 2000.0);
  EXPECT_DOUBLE_EQ(obs::RatePerSec(window, Counter::kNntDeleteEdges), 0.0);
  window.duration_micros = 0;
  EXPECT_DOUBLE_EQ(obs::RatePerSec(window, Counter::kNntInsertEdges), 0.0);
}

TEST(ObsWindowTest, AdvanceRollsTheRingKeepingMostRecent) {
  obs::MetricsRegistry::Global().Reset();
  obs::WindowedTelemetry& telemetry = obs::WindowedTelemetry::Global();
  EXPECT_EQ(telemetry.Latest().seq, 0) << "no window closed after reset";

  const int total = obs::kWindowRingSize + 3;
  for (int i = 1; i <= total; ++i) {
    MetricSink sink;
    sink.Add(Counter::kNntInsertEdges, i);
    obs::MetricsRegistry::Global().MergeAndReset(sink);
    const obs::WindowSnapshot closed = telemetry.Advance();
    EXPECT_EQ(closed.seq, i);
    EXPECT_EQ(closed.delta.Value(Counter::kNntInsertEdges), i);
  }

  std::vector<obs::WindowSnapshot> recent;
  telemetry.Recent(&recent);
  ASSERT_EQ(recent.size(), static_cast<size_t>(obs::kWindowRingSize));
  // Oldest windows were evicted; the ring holds the most recent, in order.
  EXPECT_EQ(recent.front().seq, total - obs::kWindowRingSize + 1);
  EXPECT_EQ(recent.back().seq, total);
  EXPECT_EQ(telemetry.Latest().seq, total);
  obs::MetricsRegistry::Global().Reset();
}

TEST(ObsWindowTest, WindowsPlusOpenWindowPartitionTheCumulative) {
  // Barrier merges land on either side of a window boundary; every sample
  // must land in exactly one window, never zero or two.
  obs::MetricsRegistry::Global().Reset();
  MetricSink a = SampleSinkA();
  obs::MetricsRegistry::Global().MergeAndReset(a);
  obs::WindowedTelemetry::Global().Advance();  // Boundary between barriers.
  MetricSink b = SampleSinkB();
  obs::MetricsRegistry::Global().MergeAndReset(b);
  MetricSink c;
  c.Add(Counter::kJoinPairsIn, 5);
  c.Observe(Hist::kStageJoinRefreshMicros, 9);
  obs::MetricsRegistry::Global().MergeAndReset(c);  // Stays in the open window.

  MetricSink reassembled;
  std::vector<obs::WindowSnapshot> recent;
  obs::WindowedTelemetry::Global().Recent(&recent);
  for (const obs::WindowSnapshot& window : recent) {
    reassembled.MergeFrom(window.delta);
  }
  reassembled.MergeFrom(obs::WindowedTelemetry::Global().OpenDelta());
  EXPECT_EQ(reassembled, obs::MetricsRegistry::Global().Snapshot());
  obs::MetricsRegistry::Global().Reset();
}

// --- Exemplars -------------------------------------------------------------

TEST(ObsExemplarTest, StageSampleThresholdIsInclusive) {
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "instrumentation compiled out (GSPS_OBS_DISABLED)";
  }
  obs::ExemplarStore::Global().Reset();
  obs::SetExemplarThreshold(Hist::kStageJoinRefreshMicros, 100);
  MetricSink sink;
  obs::ScopedObsContext scope(&sink, nullptr);
  obs::StageSample(obs::Stage::kJoinRefresh, 99, /*stream=*/0, /*query=*/1);
  obs::StageSample(obs::Stage::kJoinRefresh, 100, /*stream=*/2, /*query=*/3);
  obs::StageSample(obs::Stage::kJoinRefresh, 101, /*stream=*/4, /*query=*/5);

  std::vector<obs::Exemplar> exemplars;
  obs::ExemplarStore::Global().Snapshot(&exemplars);
  ASSERT_EQ(exemplars.size(), 2u) << "99 is below the 100us threshold";
  EXPECT_EQ(exemplars[0].value_micros, 100);
  EXPECT_EQ(exemplars[0].stage, obs::Stage::kJoinRefresh);
  EXPECT_EQ(exemplars[0].hist, Hist::kStageJoinRefreshMicros);
  EXPECT_EQ(exemplars[0].stream, 2);
  EXPECT_EQ(exemplars[0].query, 3);
  EXPECT_NE(exemplars[0].span_id, 0u);
  EXPECT_EQ(exemplars[1].value_micros, 101);
  EXPECT_NE(exemplars[1].span_id, exemplars[0].span_id);
  // All three samples still count in the histogram.
  EXPECT_EQ(sink.histogram(Hist::kStageJoinRefreshMicros).count, 3);

  obs::ExemplarStore::Global().Reset();
  EXPECT_EQ(obs::ExemplarThreshold(Hist::kStageJoinRefreshMicros),
            obs::kDefaultExemplarThresholdMicros)
      << "Reset restores the default threshold";
}

TEST(ObsExemplarTest, RingEvictsOldestOnceFull) {
  obs::ExemplarStore::Global().Reset();
  for (int i = 0; i < obs::kExemplarRingSize + 5; ++i) {
    obs::Exemplar exemplar;
    exemplar.hist = Hist::kUpdateBatchMicros;
    exemplar.value_micros = i;
    obs::ExemplarStore::Global().Record(exemplar);
  }
  std::vector<obs::Exemplar> exemplars;
  obs::ExemplarStore::Global().Snapshot(&exemplars);
  ASSERT_EQ(exemplars.size(), static_cast<size_t>(obs::kExemplarRingSize));
  EXPECT_EQ(exemplars.front().value_micros, 5);
  EXPECT_EQ(exemplars.back().value_micros, obs::kExemplarRingSize + 4);
  obs::ExemplarStore::Global().Reset();
}

// --- Per-query attribution -------------------------------------------------

TEST(ObsAttributionTest, RegistryMergesByGeneration) {
  obs::AttributionRegistry& registry = obs::AttributionRegistry::Global();
  registry.Reset();
  obs::AttributionRow row;
  row.slot = 0;
  row.generation = 1;
  row.dominance_probes = 10;
  row.refresh_micros = 5;
  row.refreshes = 1;
  registry.MergeBatch(&row, 1);
  registry.MergeBatch(&row, 1);  // Same generation: accumulates.
  std::vector<obs::AttributionRow> top;
  registry.TopK(10, &top);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].dominance_probes, 20);
  EXPECT_EQ(top[0].refresh_micros, 10);

  obs::AttributionRow newer = row;
  newer.generation = 2;
  newer.dominance_probes = 7;
  registry.MergeBatch(&newer, 1);  // Newer generation: replaces.
  registry.TopK(10, &top);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].dominance_probes, 7);
  EXPECT_EQ(top[0].generation, 2);

  registry.MergeBatch(&row, 1);  // Stale generation: dropped.
  registry.TopK(10, &top);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].dominance_probes, 7);
  registry.Reset();
}

TEST(ObsAttributionTest, FlushSplitsByWeightAndConservesTotals) {
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "instrumentation compiled out (GSPS_OBS_DISABLED)";
  }
  obs::AttributionRegistry& registry = obs::AttributionRegistry::Global();
  registry.Reset();
  obs::QueryAttribution attribution;
  attribution.Reset(3);
  attribution.OnAddQuery(0, 1);
  attribution.OnAddQuery(1, 3);
  attribution.OnAddQuery(2, 1);
  attribution.AddProbes(100);
  attribution.AddRefresh(50);
  attribution.Flush();

  std::vector<obs::AttributionRow> top;
  registry.TopK(10, &top);
  ASSERT_EQ(top.size(), 3u);
  int64_t probes = 0, micros = 0;
  for (const obs::AttributionRow& r : top) {
    probes += r.dominance_probes;
    micros += r.refresh_micros;
  }
  EXPECT_EQ(probes, 100) << "weighted split conserves the probe total";
  EXPECT_EQ(micros, 50) << "weighted split conserves the refresh total";
  EXPECT_EQ(top[0].slot, 1) << "heaviest-weight slot leads the top-K";
  EXPECT_EQ(top[0].dominance_probes, 60);  // 100 * 3/5.

  // A removed slot stops receiving attribution on later flushes.
  attribution.OnRemoveQuery(1);
  attribution.AddProbes(10);
  attribution.Flush();
  registry.TopK(10, &top);
  for (const obs::AttributionRow& r : top) {
    if (r.slot == 1) {
      EXPECT_EQ(r.dominance_probes, 60);
    }
  }
  registry.Reset();
}

// --- Scoped context --------------------------------------------------------

TEST(ObsContextTest, ScopedContextInstallsNestsAndRestores) {
  EXPECT_EQ(obs::CurrentSink(), nullptr);
  MetricSink outer_sink, inner_sink;
  {
    obs::ScopedObsContext outer(&outer_sink, nullptr);
    EXPECT_EQ(obs::CurrentSink(), &outer_sink);
    {
      obs::ScopedObsContext inner(&inner_sink, nullptr);
      EXPECT_EQ(obs::CurrentSink(), &inner_sink);
      GSPS_OBS_COUNT(Counter::kNntInsertEdges, 2);
    }
    EXPECT_EQ(obs::CurrentSink(), &outer_sink);
    GSPS_OBS_COUNT(Counter::kNntInsertEdges, 1);
  }
  EXPECT_EQ(obs::CurrentSink(), nullptr);
  GSPS_OBS_COUNT(Counter::kNntInsertEdges, 100);  // No context: dropped.
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(inner_sink.Value(Counter::kNntInsertEdges), 2);
    EXPECT_EQ(outer_sink.Value(Counter::kNntInsertEdges), 1);
  } else {
    EXPECT_EQ(inner_sink.Value(Counter::kNntInsertEdges), 0);
    EXPECT_EQ(outer_sink.Value(Counter::kNntInsertEdges), 0);
  }
}

// --- Trace JSON ------------------------------------------------------------

TEST(ObsTraceTest, TraceJsonParsesBackWithAllSpans) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Clear();
  tracer.Enable();
  ASSERT_TRUE(tracer.enabled());
  obs::TraceBuffer* driver = tracer.NewBuffer(/*tid=*/0);
  obs::TraceBuffer* shard = tracer.NewBuffer(/*tid=*/1);
  ASSERT_NE(driver, nullptr);
  ASSERT_NE(shard, nullptr);

  {
    // ScopedSpan works in both build modes; only the GSPS_OBS_SPAN macro is
    // compiled out under GSPS_OBS_DISABLED.
    obs::ScopedObsContext scope(nullptr, driver);
    obs::ScopedSpan span("tick", "monitor");
  }
  shard->Record("shard_update", "engine", 5, 10);
  shard->Record("shard_join", "engine", 20, 2);

  const std::string json = tracer.ToJson();
  JsonParser parser(json);
  EXPECT_TRUE(parser.Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"X\""), 3);
  EXPECT_EQ(CountOccurrences(json, "\"tid\":0"), 1);
  EXPECT_EQ(CountOccurrences(json, "\"tid\":1"), 2);
  EXPECT_NE(json.find("\"name\":\"tick\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"engine\""), std::string::npos);
  EXPECT_EQ(CountOccurrences(json, "\"pid\":1"), 3);

  tracer.Clear();
  EXPECT_FALSE(tracer.enabled());
  EXPECT_EQ(tracer.NewBuffer(2), nullptr) << "disabled tracer hands out null";
  const std::string empty = tracer.ToJson();
  JsonParser empty_parser(empty);
  EXPECT_TRUE(empty_parser.Valid()) << empty;
  EXPECT_EQ(CountOccurrences(empty, "\"ph\":\"X\""), 0);
}

// --- End to end: the instrumented engine -----------------------------------

// Runs the sharded engine (updates + joins) over an evolving workload for
// one join strategy, recording driver-thread metrics into `root_sink` and
// shard metrics into the registry (the engine's own barrier bookkeeping).
void DriveEngine(const StreamDataset& dataset, JoinKind kind,
                 MetricSink& root_sink) {
  obs::ScopedObsContext scope(&root_sink, nullptr);
  ParallelEngineOptions options;
  options.engine.join_kind = kind;
  options.engine.nnt_depth = 3;
  options.num_threads = 2;
  ParallelQueryEngine engine(options);
  for (const Graph& q : dataset.queries) engine.AddQuery(q);
  int horizon = 0;
  for (const GraphStream& s : dataset.streams) {
    engine.AddStream(s.StartGraph());
    horizon = std::max(horizon, s.NumTimestamps());
  }
  engine.Start();
  std::vector<GraphChange> batches(dataset.streams.size());
  for (int t = 1; t < horizon; ++t) {
    for (size_t i = 0; i < dataset.streams.size(); ++i) {
      const GraphStream& s = dataset.streams[i];
      batches[i] = t < s.NumTimestamps() ? s.ChangeAt(t) : GraphChange{};
    }
    engine.ApplyChanges(batches);
    engine.AllCandidatePairs();
    // A second read with no intervening deltas is answered from the
    // per-stream verdict caches (gsps_join_verdicts_reused).
    engine.AllCandidatePairs();
  }
  // Dynamic churn: a query over labels no synthetic query uses introduces
  // fresh dimensions, forcing a dim-remap regrowth in every strategy
  // (gsps_remap_regrowths); the remove exercises slot retirement and the
  // gsps_queries_active gauge.
  Graph churn_query;
  churn_query.EnsureVertex(0, 91);
  churn_query.EnsureVertex(1, 92);
  churn_query.AddEdge(0, 1, 93);
  const int churn_id = engine.AddQueryDynamic(churn_query);
  engine.AllCandidatePairs();
  engine.RemoveQueryDynamic(churn_id);
  engine.AllCandidatePairs();
}

TEST(ObsEndToEndTest, EveryMetricNonzeroAfterInstrumentedRun) {
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "instrumentation compiled out (GSPS_OBS_DISABLED)";
  }
  obs::MetricsRegistry::Global().Reset();

  SyntheticStreamParams params;
  params.num_pairs = 6;
  params.evolution.num_timestamps = 10;
  params.evolution.p_appear = 0.25;
  params.evolution.p_disappear = 0.2;
  params.evolution.extra_pair_fraction = 3.0;
  params.seed = 7;
  const StreamDataset dataset = MakeSyntheticStreams(params);

  MetricSink root_sink;
  // All three strategies so NL/Skyline (dominance tests, early stops) and
  // DSC (set-cover rounds/flips) counters all fire.
  DriveEngine(dataset, JoinKind::kNestedLoop, root_sink);
  DriveEngine(dataset, JoinKind::kDominatedSetCover, root_sink);
  DriveEngine(dataset, JoinKind::kSkylineEarlyStop, root_sink);

  // Candidate transitions, driven deterministically.
  {
    obs::ScopedObsContext scope(&root_sink, nullptr);
    CandidateTracker tracker(1);
    tracker.Observe(0, {0, 1});
    tracker.Observe(0, {1, 2});  // q0 disappears, q2 appears.
  }

  // Ingest pipeline: a capacity-1 queue whose second Push blocks until the
  // consumer drains, reported into the sink the way gsps_loadgen does.
  {
    obs::ScopedObsContext scope(&root_sink, nullptr);
    IngestQueue queue(1);
    ASSERT_TRUE(queue.Push(IngestEvent{}));
    std::thread producer([&] { queue.Push(IngestEvent{}); });
    // producer_waits is bumped before the blocking wait, so spinning on it
    // guarantees the second Push observed a full queue.
    while (queue.Stats().producer_waits < 1) std::this_thread::yield();
    IngestEvent event;
    ASSERT_TRUE(queue.Pop(&event));
    ASSERT_TRUE(queue.Pop(&event));
    producer.join();
    queue.Close();
    const IngestQueueStats stats = queue.Stats();
    obs::CurrentSink()->Add(Counter::kIngestAccepted, stats.accepted);
    obs::CurrentSink()->Add(Counter::kIngestDelivered, stats.delivered);
    obs::CurrentSink()->Add(Counter::kIngestProducerWaits,
                            stats.producer_waits);
    obs::CurrentSink()->Set(Gauge::kIngestQueueDepth, stats.depth_high_water);
    obs::CurrentSink()->Observe(
        Hist::kIngestE2eMicros,
        obs::MonotonicMicros() - event.enqueue_micros + 1);
  }

  // The pipelined engine end to end: router fan-out, lane depth, delta
  // coalescing, and the epoch-watermark protocol. Each timestamp batch is
  // split into two fragments so the worker-side coalescer must merge them
  // (gsps_pipeline_coalesced_deltas); Shutdown folds the router counters.
  {
    PipelinedEngineOptions options;
    options.num_threads = 2;
    PipelinedQueryEngine engine(options);
    for (const Graph& q : dataset.queries) engine.AddQuery(q);
    int horizon = 0;
    for (const GraphStream& s : dataset.streams) {
      engine.AddStream(s.StartGraph());
      horizon = std::max(horizon, s.NumTimestamps());
    }
    engine.Start();
    for (int t = 1; t < horizon; ++t) {
      for (size_t i = 0; i < dataset.streams.size(); ++i) {
        const GraphStream& s = dataset.streams[i];
        if (t >= s.NumTimestamps()) continue;
        const GraphChange change = s.ChangeAt(t);
        const auto half =
            change.ops.begin() +
            static_cast<std::ptrdiff_t>(change.ops.size() / 2);
        IngestEvent first;
        first.stream = static_cast<int32_t>(i);
        first.timestamp = t;
        first.change.ops.assign(change.ops.begin(), half);
        IngestEvent second;
        second.stream = static_cast<int32_t>(i);
        second.timestamp = t;
        second.change.ops.assign(half, change.ops.end());
        ASSERT_TRUE(engine.Ingest(std::move(first)));
        ASSERT_TRUE(engine.Ingest(std::move(second)));
      }
      engine.AdvanceEpoch(t);
      engine.AllCandidatePairs();
    }
    engine.Shutdown();
  }

  // The engine runs bump only the dispatched ISA's batch counter; drive the
  // other supported ISAs through forced batches the way the kernel bench
  // does. Unsupported ISAs stay at zero and are exempted below.
  {
    obs::ScopedObsContext scope(&root_sink, nullptr);
    std::vector<NpvEntry> needle = {NpvEntry{0, 1}};
    NpvSlab slab;
    slab.Append(needle);
    for (int i = 0; i < kNumDominanceIsas; ++i) {
      const DominanceIsa isa = static_cast<DominanceIsa>(i);
      if (!DominanceIsaSupported(isa)) continue;
      DominanceBatch batch(isa);
      batch.Bind(slab, 1);
      DominanceKernelStats stats;
      batch.ComputeMask(needle.data(), needle.data() + needle.size(),
                        slab.signature(0), &stats);
      obs::CurrentSink()->Add(batch.batch_counter(), stats.batches);
    }
  }

  obs::MetricsRegistry::Global().MergeAndReset(root_sink);
  const MetricSink snapshot = obs::MetricsRegistry::Global().Snapshot();
  for (int i = 0; i < obs::kNumCounters; ++i) {
    const Counter counter = static_cast<Counter>(i);
    if ((counter == Counter::kDominanceBatchesAvx2 &&
         !DominanceIsaSupported(DominanceIsa::kAvx2)) ||
        (counter == Counter::kDominanceBatchesAvx512 &&
         !DominanceIsaSupported(DominanceIsa::kAvx512))) {
      EXPECT_EQ(snapshot.Value(counter), 0) << obs::CounterName(counter);
      continue;
    }
    EXPECT_GT(snapshot.Value(counter), 0) << obs::CounterName(counter);
  }
  for (int i = 0; i < obs::kNumGauges; ++i) {
    const Gauge gauge = static_cast<Gauge>(i);
    EXPECT_GT(snapshot.GaugeValue(gauge), 0) << obs::GaugeName(gauge);
  }
  for (int i = 0; i < obs::kNumHists; ++i) {
    const Hist hist = static_cast<Hist>(i);
    EXPECT_GT(snapshot.histogram(hist).count, 0) << obs::HistName(hist);
  }
  obs::MetricsRegistry::Global().Reset();
}

}  // namespace
}  // namespace gsps
