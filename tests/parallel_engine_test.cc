// Tests for the sharded parallel engine and its thread pool.
//
// The load-bearing property is output equivalence: ParallelQueryEngine must
// produce byte-identical candidate pairs to ContinuousQueryEngine on the
// same inputs at every timestamp, for every join strategy and thread count
// (1-8, spanning fewer and more workers than streams). On top of that, the
// paper's no-false-negative guarantee is re-checked under concurrency
// against VF2 ground truth. These tests are the payload of the TSan CI job.

#include "gsps/engine/parallel_query_engine.h"

#include <algorithm>
#include <atomic>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "gsps/common/thread_pool.h"
#include "gsps/engine/continuous_query_engine.h"
#include "gsps/gen/stream_generator.h"
#include "gsps/graph/graph_change.h"
#include "gsps/iso/subgraph_isomorphism.h"

namespace gsps {
namespace {

// --- ThreadPool ------------------------------------------------------------

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
    constexpr int kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.ParallelFor(kN, [&](int i) {
      hits[static_cast<size_t>(i)].fetch_add(1, std::memory_order_relaxed);
    });
    for (int i = 0; i < kN; ++i) {
      EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPoolTest, ReusableAcrossManyBarriers) {
  ThreadPool pool(4);
  std::atomic<int64_t> sum{0};
  int64_t expected = 0;
  for (int round = 0; round < 200; ++round) {
    const int n = 1 + round % 7;
    pool.ParallelFor(n, [&](int i) {
      sum.fetch_add(i + 1, std::memory_order_relaxed);
    });
    expected += n * (n + 1) / 2;
  }
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPoolTest, ZeroAndNegativeCountsAreNoops) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(0, [&](int) { ran = true; });
  pool.ParallelFor(-3, [&](int) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ClampsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  int calls = 0;
  pool.ParallelFor(5, [&](int) { ++calls; });
  EXPECT_EQ(calls, 5);
  EXPECT_GE(ThreadPool::HardwareThreads(), 1);
}

// --- Equivalence with the sequential engine --------------------------------

struct Workload {
  std::vector<Graph> queries;
  std::vector<GraphStream> streams;
};

Workload RandomWorkload(int num_streams, int num_timestamps, uint64_t seed) {
  SyntheticStreamParams params;
  params.num_pairs = num_streams;
  params.evolution.num_timestamps = num_timestamps;
  params.evolution.p_appear = 0.25;
  params.evolution.p_disappear = 0.2;
  params.evolution.extra_pair_fraction = 3.0;
  params.seed = seed;
  StreamDataset dataset = MakeSyntheticStreams(params);
  return Workload{std::move(dataset.queries), std::move(dataset.streams)};
}

// Runs both engines over the workload and asserts identical candidate
// pairs at every timestamp.
void ExpectEquivalent(const Workload& workload, JoinKind kind,
                      int num_threads) {
  EngineOptions sequential_options;
  sequential_options.join_kind = kind;
  ContinuousQueryEngine sequential(sequential_options);

  ParallelEngineOptions parallel_options;
  parallel_options.engine = sequential_options;
  parallel_options.num_threads = num_threads;
  ParallelQueryEngine parallel(parallel_options);

  for (const Graph& q : workload.queries) {
    sequential.AddQuery(q);
    parallel.AddQuery(q);
  }
  const int num_streams = static_cast<int>(workload.streams.size());
  for (const GraphStream& s : workload.streams) {
    sequential.AddStream(s.StartGraph());
    parallel.AddStream(s.StartGraph());
  }
  sequential.Start();
  parallel.Start();
  EXPECT_EQ(parallel.num_shards(),
            std::min(std::max(1, num_threads), num_streams));

  int horizon = 0;
  for (const GraphStream& s : workload.streams) {
    horizon = std::max(horizon, s.NumTimestamps());
  }
  std::vector<GraphChange> batches(static_cast<size_t>(num_streams));
  for (int t = 0; t < horizon; ++t) {
    if (t > 0) {
      for (int i = 0; i < num_streams; ++i) {
        const GraphStream& s = workload.streams[static_cast<size_t>(i)];
        batches[static_cast<size_t>(i)] =
            t < s.NumTimestamps() ? s.ChangeAt(t) : GraphChange{};
        sequential.ApplyChange(i, batches[static_cast<size_t>(i)]);
      }
      parallel.ApplyChanges(batches);
    }
    ASSERT_EQ(parallel.AllCandidatePairs(), sequential.AllCandidatePairs())
        << "join=" << JoinKindName(kind) << " threads=" << num_threads
        << " t=" << t;
  }
}

TEST(ParallelEngineTest, MatchesSequentialAcrossThreadCountsAndStrategies) {
  const Workload workload = RandomWorkload(/*num_streams=*/9,
                                           /*num_timestamps=*/12,
                                           /*seed=*/77);
  for (const JoinKind kind :
       {JoinKind::kNestedLoop, JoinKind::kDominatedSetCover,
        JoinKind::kSkylineEarlyStop}) {
    // 1 = degenerate single shard; 4 < streams; 8 ~ streams; 12 > streams.
    for (const int threads : {1, 4, 8, 12}) {
      ExpectEquivalent(workload, kind, threads);
    }
  }
}

TEST(ParallelEngineTest, MatchesSequentialOnManyRandomSeeds) {
  for (const uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const Workload workload =
        RandomWorkload(/*num_streams=*/6, /*num_timestamps=*/8, seed);
    ExpectEquivalent(workload, JoinKind::kDominatedSetCover, 3);
  }
}

TEST(ParallelEngineTest, CandidatesForStreamMatchesMergedPairs) {
  const Workload workload = RandomWorkload(5, 6, 21);
  ParallelEngineOptions options;
  options.num_threads = 3;
  ParallelQueryEngine engine(options);
  for (const Graph& q : workload.queries) engine.AddQuery(q);
  for (const GraphStream& s : workload.streams) {
    engine.AddStream(s.StartGraph());
  }
  engine.Start();
  std::vector<std::pair<int, int>> rebuilt;
  for (int i = 0; i < engine.num_streams(); ++i) {
    for (const int q : engine.CandidatesForStream(i)) rebuilt.emplace_back(i, q);
  }
  EXPECT_EQ(rebuilt, engine.AllCandidatePairs());
}

// --- No-false-negative property under concurrency --------------------------

TEST(ParallelEngineTest, NoFalseNegativesAgainstExactIsomorphism) {
  // A dense regime — small low-label queries, appear-biased evolution — so
  // streams actually grow supergraphs of their base query and ground-truth
  // matches occur (asserted below: the property must have teeth).
  SyntheticStreamParams params;
  params.num_pairs = 6;
  params.avg_graph_edges = 9;
  params.num_vertex_labels = 2;
  params.evolution.num_timestamps = 10;
  params.evolution.p_appear = 0.55;
  params.evolution.p_disappear = 0.05;
  params.evolution.extra_pair_fraction = 2.0;
  params.seed = 99;
  StreamDataset dataset = MakeSyntheticStreams(params);
  const Workload workload{std::move(dataset.queries),
                          std::move(dataset.streams)};
  ParallelEngineOptions options;
  options.num_threads = 4;
  ParallelQueryEngine engine(options);
  for (const Graph& q : workload.queries) engine.AddQuery(q);
  const int num_streams = static_cast<int>(workload.streams.size());
  for (const GraphStream& s : workload.streams) {
    engine.AddStream(s.StartGraph());
  }
  engine.Start();

  int horizon = 0;
  for (const GraphStream& s : workload.streams) {
    horizon = std::max(horizon, s.NumTimestamps());
  }
  int true_pairs_seen = 0;
  std::vector<GraphChange> batches(static_cast<size_t>(num_streams));
  for (int t = 0; t < horizon; ++t) {
    if (t > 0) {
      for (int i = 0; i < num_streams; ++i) {
        const GraphStream& s = workload.streams[static_cast<size_t>(i)];
        batches[static_cast<size_t>(i)] =
            t < s.NumTimestamps() ? s.ChangeAt(t) : GraphChange{};
      }
      engine.ApplyChanges(batches);
    }
    const std::vector<std::pair<int, int>> candidates =
        engine.AllCandidatePairs();
    for (int i = 0; i < num_streams; ++i) {
      for (int q = 0; q < engine.num_queries(); ++q) {
        if (!IsSubgraphIsomorphic(engine.QueryGraph(q),
                                  engine.StreamGraph(i))) {
          continue;
        }
        ++true_pairs_seen;
        EXPECT_NE(std::find(candidates.begin(), candidates.end(),
                            std::make_pair(i, q)),
                  candidates.end())
            << "false negative: stream " << i << " query " << q << " at t="
            << t;
        EXPECT_TRUE(engine.VerifyCandidate(i, q));
      }
    }
  }
  // The workload derives queries from the streams, so ground-truth matches
  // must actually occur for the property to have teeth.
  EXPECT_GT(true_pairs_seen, 0);
}

// --- Dynamic queries and stats ---------------------------------------------

TEST(ParallelEngineTest, DynamicQueriesStayEquivalent) {
  const Workload workload = RandomWorkload(5, 4, 13);
  EngineOptions sequential_options;
  ContinuousQueryEngine sequential(sequential_options);
  ParallelEngineOptions parallel_options;
  parallel_options.num_threads = 4;
  ParallelQueryEngine parallel(parallel_options);

  for (size_t j = 0; j + 1 < workload.queries.size(); ++j) {
    sequential.AddQuery(workload.queries[j]);
    parallel.AddQuery(workload.queries[j]);
  }
  const int num_streams = static_cast<int>(workload.streams.size());
  for (const GraphStream& s : workload.streams) {
    sequential.AddStream(s.StartGraph());
    parallel.AddStream(s.StartGraph());
  }
  sequential.Start();
  parallel.Start();

  const Graph& late_query = workload.queries.back();
  EXPECT_EQ(parallel.AddQueryDynamic(late_query),
            sequential.AddQueryDynamic(late_query));
  EXPECT_EQ(parallel.AllCandidatePairs(), sequential.AllCandidatePairs());

  sequential.RemoveQueryDynamic(0);
  parallel.RemoveQueryDynamic(0);
  std::vector<GraphChange> batches(static_cast<size_t>(num_streams));
  for (int i = 0; i < num_streams; ++i) {
    const GraphStream& s = workload.streams[static_cast<size_t>(i)];
    batches[static_cast<size_t>(i)] = s.NumTimestamps() > 1
                                          ? s.ChangeAt(1)
                                          : GraphChange{};
    sequential.ApplyChange(i, batches[static_cast<size_t>(i)]);
  }
  parallel.ApplyChanges(batches);
  EXPECT_EQ(parallel.AllCandidatePairs(), sequential.AllCandidatePairs());
}

TEST(ParallelEngineTest, BarrierStatsMergePerWorkerSamples) {
  const Workload workload = RandomWorkload(6, 3, 31);
  ParallelEngineOptions options;
  options.num_threads = 3;
  ParallelQueryEngine engine(options);
  for (const Graph& q : workload.queries) engine.AddQuery(q);
  for (const GraphStream& s : workload.streams) {
    engine.AddStream(s.StartGraph());
  }
  engine.Start();

  const std::vector<std::pair<int, int>> pairs = engine.AllCandidatePairs();
  const TimestampStats stats = engine.TakeBarrierStats();
  EXPECT_EQ(stats.candidate_pairs, static_cast<int64_t>(pairs.size()));
  EXPECT_EQ(stats.total_pairs,
            static_cast<int64_t>(engine.num_streams()) * engine.num_queries());
  EXPECT_GE(stats.join_millis, 0.0);
  // The merge drained the per-shard accumulators.
  const TimestampStats drained = engine.TakeBarrierStats();
  EXPECT_EQ(drained.candidate_pairs, 0);
  EXPECT_EQ(drained.update_millis, 0.0);
}

TEST(MergeParallelSamplesTest, SumsCountsAndTakesCriticalPath) {
  TimestampStats a;
  a.timestamp = 7;
  a.candidate_pairs = 3;
  a.total_pairs = 10;
  a.true_pairs = 2;
  a.update_millis = 1.5;
  a.join_millis = 0.25;
  TimestampStats b;
  b.timestamp = 7;
  b.candidate_pairs = 5;
  b.total_pairs = 10;
  b.true_pairs = 4;
  b.update_millis = 0.5;
  b.join_millis = 2.0;
  const TimestampStats merged = MergeParallelSamples({a, b});
  EXPECT_EQ(merged.timestamp, 7);
  EXPECT_EQ(merged.candidate_pairs, 8);
  EXPECT_EQ(merged.total_pairs, 20);
  EXPECT_EQ(merged.true_pairs, 6);
  EXPECT_DOUBLE_EQ(merged.update_millis, 1.5);
  EXPECT_DOUBLE_EQ(merged.join_millis, 2.0);

  b.true_pairs = -1;  // One shard without ground truth poisons the sum.
  EXPECT_EQ(MergeParallelSamples({a, b}).true_pairs, -1);
}

}  // namespace
}  // namespace gsps
