// Tests for graph-stream text serialization.

#include "gsps/graph/stream_io.h"

#include <gtest/gtest.h>

#include "gsps/gen/stream_generator.h"
#include "gsps/graph/graph_io.h"

namespace gsps {
namespace {

GraphStream MakeSampleStream() {
  Graph start;
  start.AddVertex(1);
  start.AddVertex(2);
  start.AddVertex(3);
  EXPECT_TRUE(start.AddEdge(0, 1, 5));
  GraphStream stream(start);
  GraphChange c1;
  c1.ops.push_back(EdgeOp::Insert(1, 2, 0, 2, 3));
  stream.AppendChange(c1);
  stream.AppendChange(GraphChange{});  // Empty batch.
  GraphChange c3;
  c3.ops.push_back(EdgeOp::Delete(0, 1));
  c3.ops.push_back(EdgeOp::Insert(0, 3, 1, 1, 9));
  stream.AppendChange(c3);
  return stream;
}

void ExpectStreamsEqual(const GraphStream& a, const GraphStream& b) {
  ASSERT_EQ(a.NumTimestamps(), b.NumTimestamps());
  for (int t = 0; t < a.NumTimestamps(); ++t) {
    EXPECT_EQ(a.MaterializeAt(t), b.MaterializeAt(t)) << "t=" << t;
    if (t > 0) {
      EXPECT_EQ(a.ChangeAt(t), b.ChangeAt(t)) << "t=" << t;
    }
  }
}

TEST(StreamIoTest, RoundTrip) {
  const GraphStream stream = MakeSampleStream();
  const std::string text = FormatStream(stream);
  const std::optional<GraphStream> parsed = ParseStream(text);
  ASSERT_TRUE(parsed.has_value());
  ExpectStreamsEqual(stream, *parsed);
  // Round-tripping the parse is a fixed point.
  EXPECT_EQ(FormatStream(*parsed), text);
}

TEST(StreamIoTest, RoundTripGeneratedStream) {
  SyntheticStreamParams params;
  params.num_pairs = 2;
  params.avg_graph_edges = 10;
  params.evolution.num_timestamps = 25;
  params.seed = 9;
  const StreamDataset dataset = MakeSyntheticStreams(params);
  for (const GraphStream& stream : dataset.streams) {
    const std::optional<GraphStream> parsed =
        ParseStream(FormatStream(stream));
    ASSERT_TRUE(parsed.has_value());
    ExpectStreamsEqual(stream, *parsed);
  }
}

TEST(StreamIoTest, StartGraphOnly) {
  Graph start;
  start.AddVertex(4);
  const std::optional<GraphStream> parsed =
      ParseStream(FormatStream(GraphStream(start)));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->NumTimestamps(), 1);
  EXPECT_EQ(parsed->StartGraph(), start);
}

TEST(StreamIoTest, CommentsAndBlankLinesIgnored) {
  const std::optional<GraphStream> parsed = ParseStream(
      "# header\nv 0 1\nv 1 1\n\ne 0 1 0\nt 1\n# batch\n- 0 1\n");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->NumTimestamps(), 2);
  EXPECT_EQ(parsed->MaterializeAt(1).NumEdges(), 0);
}

TEST(StreamIoTest, AcceptsCrlfLineEndings) {
  // Files that crossed a Windows checkout (or an HTTP upload) arrive with
  // \r\n endings; the parser must treat them exactly like \n.
  const std::string unix_text = FormatStream(MakeSampleStream());
  std::string crlf_text;
  for (const char c : unix_text) {
    if (c == '\n') crlf_text += '\r';
    crlf_text += c;
  }
  const std::optional<GraphStream> parsed = ParseStream(crlf_text);
  ASSERT_TRUE(parsed.has_value());
  ExpectStreamsEqual(MakeSampleStream(), *parsed);
  EXPECT_EQ(FormatStream(*parsed), unix_text);
}

TEST(StreamIoTest, AcceptsTrailingBlankAndWhitespaceLines) {
  // Trailing newlines and whitespace-only lines (including a bare \r left
  // over from CRLF) are ignored anywhere in the file.
  const std::optional<GraphStream> parsed = ParseStream(
      "v 0 1\r\n  \t\nv 1 1\n\r\nt 1\n- 0 1\n\n\n   \n");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->NumTimestamps(), 2);
  EXPECT_EQ(parsed->StartGraph().NumVertices(), 2);
}

TEST(StreamIoTest, CrlfErrorLinesMatchUnixErrorLines) {
  IoError error;
  EXPECT_FALSE(ParseStream("v 0 1\r\nv 0 2\r\n", &error).has_value());
  EXPECT_EQ(error.line, 2);
  EXPECT_NE(error.message.find("duplicate vertex"), std::string::npos);
}

TEST(StreamIoTest, ParseGraphAcceptsCrlfAndTrailingBlanks) {
  const std::optional<Graph> graph =
      ParseGraph("v 0 1\r\nv 1 2\r\ne 0 1 3\r\n\r\n   \r\n");
  ASSERT_TRUE(graph.has_value());
  EXPECT_EQ(graph->NumVertices(), 2);
  EXPECT_EQ(graph->NumEdges(), 1);

  IoError error;
  EXPECT_FALSE(ParseGraph("v 0 1\r\ne 0 1 0\r\n", &error).has_value());
  EXPECT_EQ(error.line, 2);
  EXPECT_NE(error.message.find("undeclared"), std::string::npos);
}

// Expects `text` to be rejected with an error on `line` whose message
// contains `fragment`.
void ExpectStreamError(const std::string& text, int line,
                       const std::string& fragment) {
  IoError error;
  EXPECT_FALSE(ParseStream(text, &error).has_value()) << text;
  EXPECT_EQ(error.line, line) << text;
  EXPECT_NE(error.message.find(fragment), std::string::npos)
      << "message \"" << error.message << "\" lacks \"" << fragment << "\"";
  EXPECT_NE(error.ToString().find("line " + std::to_string(line)),
            std::string::npos);
}

TEST(StreamIoTest, RejectsTruncatedRecords) {
  ExpectStreamError("v 0\n", 1, "truncated vertex");
  ExpectStreamError("v 0 1\nv 1 1\ne 0 1\n", 3, "truncated edge");
  ExpectStreamError("v 0 1\nt\n", 2, "truncated timestamp");
  ExpectStreamError("v 0 1\nt 1\n+ 0 1 0 1\n", 3, "truncated insertion");
  ExpectStreamError("v 0 1\nt 1\n- 0\n", 3, "truncated deletion");
}

TEST(StreamIoTest, RejectsDuplicates) {
  ExpectStreamError("v 0 1\nv 0 2\n", 2, "duplicate vertex");
  ExpectStreamError("v 0 1\nv 1 1\ne 0 1 0\ne 1 0 0\n", 4, "duplicate edge");
}

TEST(StreamIoTest, RejectsOutOfRangeIds) {
  // Negative and absurdly large ids are refused by the parser, so no file
  // can drive the engine's dense vertex table out of memory (or trip its
  // internal id checks) — gsps_monitor reports these as clean errors.
  ExpectStreamError("v -1 1\n", 1, "out of range");
  ExpectStreamError("v 9999999999 1\n", 1, "out of range");
  ExpectStreamError("v 0 1\nv 1 1\ne -1 1 0\n", 3, "out of range");
  ExpectStreamError("v 0 1\nt 1\n+ -1 2 0 1 1\n", 3, "out of range");
  ExpectStreamError("v 0 1\nt 1\n+ 0 9999999999 0 1 1\n", 3, "out of range");
  ExpectStreamError("v 0 1\nt 1\n- -2 0\n", 3, "out of range");
  // Labels must fit in 32 bits.
  ExpectStreamError("v 0 99999999999\n", 1, "32-bit");
  ExpectStreamError("v 0 1\nt 1\n+ 0 1 99999999999 1 1\n", 3, "32-bit");
}

TEST(StreamIoTest, RejectsStructuralErrors) {
  ExpectStreamError("v 0 1\nv 1 1\ne 0 0 0\n", 3, "self-loop");
  ExpectStreamError("v 0 1\ne 0 1 0\n", 2, "undeclared");
  ExpectStreamError("v 0 1\nt 2\n", 2, "out-of-order timestamp");
  ExpectStreamError("v 0 1\nt 1\nt 3\n", 3, "out-of-order timestamp");
  ExpectStreamError("v 0 1\n+ 0 1 0 1 1\n", 2, "before the first 't'");
  ExpectStreamError("v 0 1\nt 1\nv 1 1\n", 3, "after the first 't'");
  ExpectStreamError("x 1\n", 1, "unknown record");
}

TEST(StreamIoTest, ErrorLinesCountCommentsAndBlanks) {
  ExpectStreamError("# header\n\nv 0 1\n# more\nv 0 2\n", 5,
                    "duplicate vertex");
}

TEST(StreamIoTest, RejectsMalformedInput) {
  // Out-of-order timestamps.
  EXPECT_FALSE(ParseStream("v 0 1\nt 2\n").has_value());
  EXPECT_FALSE(ParseStream("v 0 1\nt 1\nt 3\n").has_value());
  // Ops before any timestamp.
  EXPECT_FALSE(ParseStream("v 0 1\n+ 0 1 0 1 1\n").has_value());
  // Start-graph records after a timestamp.
  EXPECT_FALSE(ParseStream("v 0 1\nt 1\nv 1 1\n").has_value());
  // Unknown record and missing fields.
  EXPECT_FALSE(ParseStream("x 1\n").has_value());
  EXPECT_FALSE(ParseStream("v 0 1\nt 1\n- 0\n").has_value());
  // Edge between missing vertices in the start graph.
  EXPECT_FALSE(ParseStream("v 0 1\ne 0 1 0\n").has_value());
}

}  // namespace
}  // namespace gsps
