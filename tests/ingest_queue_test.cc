// Tests for the bounded MPSC ingest queue: blocking backpressure against a
// slow consumer (nothing dropped), per-producer order preservation, the
// capacity bound, and drain-on-shutdown Close semantics. The CI thread-
// sanitizer leg runs this suite (its name matches the TSan ctest filter),
// so the producer/consumer interleavings here double as a race check.

#include "gsps/engine/ingest_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace gsps {
namespace {

IngestEvent MakeEvent(int stream, int timestamp) {
  IngestEvent event;
  event.stream = stream;
  event.timestamp = timestamp;
  return event;
}

TEST(IngestQueueTest, SingleThreadFifoAndStats) {
  IngestQueue queue(8);
  EXPECT_EQ(queue.capacity(), 8u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(queue.Push(MakeEvent(0, i)));
  }
  EXPECT_EQ(queue.size(), 5u);
  IngestEvent event;
  int64_t previous_stamp = -1;  // Push stamps with a monotone clock.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(queue.Pop(&event));
    EXPECT_EQ(event.timestamp, i);
    EXPECT_GE(event.enqueue_micros, previous_stamp);
    previous_stamp = event.enqueue_micros;
  }
  const IngestQueueStats stats = queue.Stats();
  EXPECT_EQ(stats.accepted, 5);
  EXPECT_EQ(stats.delivered, 5);
  EXPECT_EQ(stats.producer_waits, 0);
  EXPECT_EQ(stats.depth_high_water, 5);
}

TEST(IngestQueueTest, KeepStampPreservesProducerClock) {
  IngestQueue queue(1);
  IngestEvent event = MakeEvent(0, 1);
  event.enqueue_micros = 12345;
  event.keep_stamp = true;
  ASSERT_TRUE(queue.Push(event));
  IngestEvent out;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out.enqueue_micros, 12345);
}

TEST(IngestQueueTest, SlowConsumerBackpressureDropsNothing) {
  // Many producers hammer a tiny queue; a deliberately slow consumer
  // drains it. Every accepted event must come out exactly once, in order
  // per producer, and the queue depth must never exceed capacity.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  constexpr size_t kCapacity = 3;
  IngestQueue queue(kCapacity);

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.Push(MakeEvent(p, i)));
      }
    });
  }

  std::vector<int> next_timestamp(kProducers, 0);
  int delivered = 0;
  std::vector<IngestEvent> batch;
  while (delivered < kProducers * kPerProducer) {
    const size_t n = queue.PopBatch(&batch, 16);
    ASSERT_GT(n, 0u);
    ASSERT_LE(n, 16u);
    for (const IngestEvent& event : batch) {
      ASSERT_GE(event.stream, 0);
      ASSERT_LT(event.stream, kProducers);
      // Global FIFO implies per-producer order: each producer's events
      // arrive in the sequence it pushed them.
      EXPECT_EQ(event.timestamp, next_timestamp[event.stream]);
      ++next_timestamp[event.stream];
      ++delivered;
    }
    // Slow the consumer down every so often to force producer waits.
    if ((delivered / 16) % 8 == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  for (std::thread& t : producers) t.join();

  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next_timestamp[p], kPerProducer) << "producer " << p;
  }
  const IngestQueueStats stats = queue.Stats();
  EXPECT_EQ(stats.accepted, kProducers * kPerProducer);
  EXPECT_EQ(stats.delivered, kProducers * kPerProducer);
  EXPECT_LE(stats.depth_high_water, static_cast<int64_t>(kCapacity));
  EXPECT_EQ(queue.size(), 0u);
}

TEST(IngestQueueTest, FullQueueBlocksProducerUntilPop) {
  IngestQueue queue(1);
  ASSERT_TRUE(queue.Push(MakeEvent(0, 0)));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(queue.Push(MakeEvent(0, 1)));
    second_pushed.store(true);
  });
  // The producer blocks before waiting, visibly: producer_waits rises
  // before the push lands.
  while (queue.Stats().producer_waits < 1) std::this_thread::yield();
  EXPECT_FALSE(second_pushed.load());
  EXPECT_EQ(queue.size(), 1u);

  IngestEvent event;
  ASSERT_TRUE(queue.Pop(&event));
  EXPECT_EQ(event.timestamp, 0);
  ASSERT_TRUE(queue.Pop(&event));
  EXPECT_EQ(event.timestamp, 1);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
}

TEST(IngestQueueTest, CloseDrainsAcceptedEventsThenStops) {
  IngestQueue queue(8);
  ASSERT_TRUE(queue.Push(MakeEvent(0, 0)));
  ASSERT_TRUE(queue.Push(MakeEvent(0, 1)));
  queue.Close();
  EXPECT_TRUE(queue.closed());
  // New pushes are rejected without touching the queue.
  EXPECT_FALSE(queue.Push(MakeEvent(0, 2)));
  EXPECT_EQ(queue.size(), 2u);
  // Accepted events still drain, in order.
  IngestEvent event;
  ASSERT_TRUE(queue.Pop(&event));
  EXPECT_EQ(event.timestamp, 0);
  std::vector<IngestEvent> batch;
  EXPECT_EQ(queue.PopBatch(&batch, 16), 1u);
  EXPECT_EQ(batch[0].timestamp, 1);
  // Drained + closed: Pop and PopBatch report end-of-stream.
  EXPECT_FALSE(queue.Pop(&event));
  EXPECT_EQ(queue.PopBatch(&batch, 16), 0u);
  EXPECT_EQ(queue.Stats().accepted, 2);
  EXPECT_EQ(queue.Stats().delivered, 2);
  queue.Close();  // Idempotent.
}

TEST(IngestQueueTest, CloseWakesBlockedProducerAndConsumer) {
  // A producer stuck on a full queue and a consumer stuck on an empty one
  // must both return promptly when Close is called from a third thread.
  IngestQueue full(1);
  ASSERT_TRUE(full.Push(MakeEvent(0, 0)));
  std::thread blocked_producer([&] {
    EXPECT_FALSE(full.Push(MakeEvent(0, 1)));  // Rejected by Close.
  });
  while (full.Stats().producer_waits < 1) std::this_thread::yield();
  full.Close();
  blocked_producer.join();
  // The event accepted before Close still drains.
  IngestEvent event;
  EXPECT_TRUE(full.Pop(&event));
  EXPECT_FALSE(full.Pop(&event));

  IngestQueue empty(1);
  std::thread blocked_consumer([&] {
    IngestEvent out;
    EXPECT_FALSE(empty.Pop(&out));  // Wakes on Close, nothing delivered.
  });
  empty.Close();
  blocked_consumer.join();
}

}  // namespace
}  // namespace gsps
