// Tests for the data synthesizers: determinism, statistical shape, and
// structural invariants of the generated workloads.

#include "gsps/gen/synthetic_generator.h"

#include <gtest/gtest.h>

#include "gsps/common/random.h"
#include "gsps/gen/aids_like.h"
#include "gsps/gen/query_extractor.h"
#include "gsps/gen/reality_like.h"
#include "gsps/gen/stream_generator.h"
#include "gsps/graph/graph_stream.h"

namespace gsps {
namespace {

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, PoissonMeanIsRoughlyRight) {
  Rng rng(3);
  double sum = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) sum += rng.Poisson(10.0);
  EXPECT_NEAR(sum / kSamples, 10.0, 0.3);
}

TEST(RngTest, ZipfSkewsTowardSmallValues) {
  Rng rng(4);
  int low = 0;
  constexpr int kSamples = 10000;
  for (int i = 0; i < kSamples; ++i) {
    const int v = rng.Zipf(50, 1.6);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 50);
    if (v < 5) ++low;
  }
  EXPECT_GT(low, kSamples / 2);  // Mass concentrates at the head.
}

TEST(SyntheticGeneratorTest, DeterministicForSameSeed) {
  SyntheticParams params;
  params.num_graphs = 5;
  params.avg_graph_edges = 15;
  const std::vector<Graph> a = GenerateSyntheticDataset(params);
  const std::vector<Graph> b = GenerateSyntheticDataset(params);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  params.seed = 2;
  const std::vector<Graph> c = GenerateSyntheticDataset(params);
  bool any_diff = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == c[i])) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticGeneratorTest, SizesTrackTargetAndGraphsAreConnected) {
  SyntheticParams params;
  params.num_graphs = 40;
  params.avg_graph_edges = 30;
  const std::vector<Graph> dataset = GenerateSyntheticDataset(params);
  ASSERT_EQ(dataset.size(), 40u);
  double total_edges = 0;
  for (const Graph& g : dataset) {
    EXPECT_GE(g.NumEdges(), 1);
    EXPECT_TRUE(g.IsConnected());
    total_edges += g.NumEdges();
    for (const VertexId v : g.VertexIds()) {
      EXPECT_LT(g.GetVertexLabel(v), params.num_vertex_labels);
    }
  }
  EXPECT_NEAR(total_edges / 40.0, 30.0, 12.0);
}

TEST(RandomConnectedGraphTest, RespectsEdgeBudgetAndConnectivity) {
  Rng rng(9);
  for (int edges = 1; edges <= 20; edges += 3) {
    const Graph g = RandomConnectedGraph(edges, 3, 2, rng);
    EXPECT_TRUE(g.IsConnected());
    EXPECT_GE(g.NumEdges(), 1);
    EXPECT_LE(g.NumEdges(), edges + 1);
  }
}

TEST(QueryExtractorTest, ExtractedSizeAndConnectivity) {
  Rng rng(10);
  SyntheticParams params;
  params.num_graphs = 10;
  params.avg_graph_edges = 20;
  const std::vector<Graph> dataset = GenerateSyntheticDataset(params);
  const std::vector<Graph> queries = ExtractQuerySet(dataset, 6, 8, rng);
  EXPECT_EQ(queries.size(), 8u);
  for (const Graph& q : queries) {
    EXPECT_EQ(q.NumEdges(), 6);
    EXPECT_TRUE(q.IsConnected());
    // Ids are compacted.
    EXPECT_EQ(q.VertexIdBound(), q.NumVertices());
  }
}

TEST(QueryExtractorTest, TooSmallSourceYieldsNullopt) {
  Rng rng(11);
  Graph tiny;
  tiny.AddVertex(0);
  tiny.AddVertex(0);
  ASSERT_TRUE(tiny.AddEdge(0, 1, 0));
  EXPECT_FALSE(ExtractConnectedSubgraph(tiny, 5, rng).has_value());
  EXPECT_TRUE(ExtractConnectedSubgraph(tiny, 1, rng).has_value());
}

TEST(StreamGeneratorTest, StreamShape) {
  SyntheticStreamParams params;
  params.num_pairs = 4;
  params.avg_graph_edges = 12;
  params.evolution.num_timestamps = 30;
  const StreamDataset dataset = MakeSyntheticStreams(params);
  ASSERT_EQ(dataset.queries.size(), 4u);
  ASSERT_EQ(dataset.streams.size(), 4u);
  for (const GraphStream& stream : dataset.streams) {
    EXPECT_EQ(stream.NumTimestamps(), 30);
    // Vertex set grows to ~1.5x of the base and stays fixed.
    const Graph start = stream.StartGraph();
    const Graph end = stream.MaterializeAt(29);
    EXPECT_EQ(start.NumVertices(), end.NumVertices());
  }
}

TEST(StreamGeneratorTest, DensityTracksStationaryDistribution) {
  SyntheticStreamParams params;
  params.num_pairs = 6;
  params.avg_graph_edges = 30;
  params.evolution.num_timestamps = 60;
  params.evolution.p_appear = 0.2;
  params.evolution.p_disappear = 0.15;
  const StreamDataset dense = MakeSyntheticStreams(params);
  params.evolution.p_appear = 0.1;
  params.evolution.p_disappear = 0.3;
  params.seed = 8;
  const StreamDataset sparse = MakeSyntheticStreams(params);

  auto avg_edges = [](const StreamDataset& d) {
    double total = 0;
    int count = 0;
    for (const GraphStream& s : d.streams) {
      for (int t = 0; t < s.NumTimestamps(); t += 10) {
        total += s.MaterializeAt(t).NumEdges();
        ++count;
      }
    }
    return total / count;
  };
  // Dense stationary density (0.57) clearly exceeds sparse (0.25).
  EXPECT_GT(avg_edges(dense), 1.5 * avg_edges(sparse));
}

TEST(StreamGeneratorTest, ChangesHaveTemporalLocality) {
  SyntheticStreamParams params;
  params.num_pairs = 3;
  params.avg_graph_edges = 20;
  params.evolution.num_timestamps = 40;
  const StreamDataset dataset = MakeSyntheticStreams(params);
  for (const GraphStream& stream : dataset.streams) {
    const int64_t candidates =
        2 * stream.StartGraph().NumEdges() + 8;  // Rough candidate-set bound.
    for (int t = 1; t < stream.NumTimestamps(); ++t) {
      EXPECT_LT(static_cast<int64_t>(stream.ChangeAt(t).ops.size()),
                candidates);
    }
  }
}

TEST(AidsLikeTest, MatchesPublishedStatistics) {
  AidsLikeParams params;
  params.num_graphs = 300;
  const std::vector<Graph> dataset = MakeAidsLikeDataset(params);
  ASSERT_EQ(dataset.size(), 300u);
  double vertices = 0, edges = 0;
  std::vector<int64_t> label_counts(
      static_cast<size_t>(params.num_vertex_labels), 0);
  for (const Graph& g : dataset) {
    vertices += g.NumVertices();
    edges += g.NumEdges();
    EXPECT_TRUE(g.IsConnected());
    for (const VertexId v : g.VertexIds()) {
      ++label_counts[static_cast<size_t>(g.GetVertexLabel(v))];
    }
  }
  EXPECT_NEAR(vertices / 300.0, 24.8, 2.0);
  EXPECT_NEAR(edges / 300.0, 26.8, 4.0);
  // Zipf label skew: the most common label dominates.
  EXPECT_GT(label_counts[0], label_counts[10] * 5);
}

TEST(RealityLikeTest, WorkloadShape) {
  RealityLikeParams params;
  params.num_streams = 3;
  params.num_queries = 4;
  params.num_timestamps = 50;
  const StreamDataset dataset = MakeRealityLikeStreams(params);
  ASSERT_EQ(dataset.streams.size(), 3u);
  ASSERT_EQ(dataset.queries.size(), 4u);
  for (const GraphStream& stream : dataset.streams) {
    EXPECT_EQ(stream.NumTimestamps(), 50);
    EXPECT_EQ(stream.StartGraph().NumVertices(), 97);
    // Proximity graphs are sparse.
    EXPECT_LT(stream.MaterializeAt(25).NumEdges(), 97 * 6);
  }
  for (const Graph& q : dataset.queries) {
    EXPECT_GE(q.NumEdges(), params.min_query_edges);
    EXPECT_LE(q.NumEdges(), params.max_query_edges);
    EXPECT_TRUE(q.IsConnected());
  }
}

}  // namespace
}  // namespace gsps
