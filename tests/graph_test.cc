// Unit tests for the labeled graph, change operations, streams, and I/O.

#include "gsps/graph/graph.h"

#include <gtest/gtest.h>

#include "gsps/common/random.h"
#include "gsps/graph/graph_change.h"
#include "gsps/graph/graph_io.h"
#include "gsps/graph/graph_stream.h"

namespace gsps {
namespace {

Graph MakeTriangle() {
  Graph g;
  const VertexId a = g.AddVertex(1);
  const VertexId b = g.AddVertex(2);
  const VertexId c = g.AddVertex(3);
  EXPECT_TRUE(g.AddEdge(a, b, 0));
  EXPECT_TRUE(g.AddEdge(b, c, 0));
  EXPECT_TRUE(g.AddEdge(a, c, 0));
  return g;
}

TEST(GraphTest, AddVertexAssignsDenseIds) {
  Graph g;
  EXPECT_EQ(g.AddVertex(5), 0);
  EXPECT_EQ(g.AddVertex(6), 1);
  EXPECT_EQ(g.NumVertices(), 2);
  EXPECT_EQ(g.GetVertexLabel(0), 5);
  EXPECT_EQ(g.GetVertexLabel(1), 6);
}

TEST(GraphTest, EnsureVertexGrowsTable) {
  Graph g;
  EXPECT_TRUE(g.EnsureVertex(4, 9));
  EXPECT_EQ(g.NumVertices(), 1);
  EXPECT_TRUE(g.HasVertex(4));
  EXPECT_FALSE(g.HasVertex(3));
  EXPECT_EQ(g.VertexIdBound(), 5);
}

TEST(GraphTest, EnsureVertexRejectsLabelConflict) {
  Graph g;
  EXPECT_TRUE(g.EnsureVertex(0, 1));
  EXPECT_FALSE(g.EnsureVertex(0, 2));
  EXPECT_TRUE(g.EnsureVertex(0, 1));  // Same label is idempotent.
  EXPECT_EQ(g.NumVertices(), 1);
}

TEST(GraphTest, AddEdgeRejectsSelfLoopDuplicateAndMissingEndpoint) {
  Graph g;
  const VertexId a = g.AddVertex(1);
  const VertexId b = g.AddVertex(1);
  EXPECT_FALSE(g.AddEdge(a, a, 0));
  EXPECT_FALSE(g.AddEdge(a, 7, 0));
  EXPECT_TRUE(g.AddEdge(a, b, 0));
  EXPECT_FALSE(g.AddEdge(b, a, 0));  // Duplicate in either direction.
  EXPECT_EQ(g.NumEdges(), 1);
}

TEST(GraphTest, EdgesAreUndirectedWithLabels) {
  Graph g;
  const VertexId a = g.AddVertex(1);
  const VertexId b = g.AddVertex(2);
  EXPECT_TRUE(g.AddEdge(a, b, 42));
  EXPECT_TRUE(g.HasEdge(a, b));
  EXPECT_TRUE(g.HasEdge(b, a));
  EXPECT_EQ(g.GetEdgeLabel(a, b), 42);
  EXPECT_EQ(g.GetEdgeLabel(b, a), 42);
}

TEST(GraphTest, RemoveEdgeUpdatesBothAdjacencies) {
  Graph g = MakeTriangle();
  EXPECT_TRUE(g.RemoveEdge(0, 1));
  EXPECT_FALSE(g.RemoveEdge(0, 1));
  EXPECT_EQ(g.NumEdges(), 2);
  EXPECT_EQ(g.Degree(0), 1);
  EXPECT_EQ(g.Degree(1), 1);
  EXPECT_EQ(g.Degree(2), 2);
}

TEST(GraphTest, RemoveVertexRemovesIncidentEdges) {
  Graph g = MakeTriangle();
  EXPECT_TRUE(g.RemoveVertex(0));
  EXPECT_FALSE(g.RemoveVertex(0));
  EXPECT_EQ(g.NumVertices(), 2);
  EXPECT_EQ(g.NumEdges(), 1);
  EXPECT_FALSE(g.HasVertex(0));
  EXPECT_TRUE(g.HasEdge(1, 2));
}

TEST(GraphTest, AdjacencyStaysSorted) {
  Graph g;
  for (int i = 0; i < 5; ++i) g.AddVertex(0);
  EXPECT_TRUE(g.AddEdge(2, 4, 0));
  EXPECT_TRUE(g.AddEdge(2, 1, 0));
  EXPECT_TRUE(g.AddEdge(2, 3, 0));
  EXPECT_TRUE(g.AddEdge(2, 0, 0));
  const std::vector<HalfEdge>& adj = g.Neighbors(2);
  for (size_t i = 1; i < adj.size(); ++i) {
    EXPECT_LT(adj[i - 1].to, adj[i].to);
  }
}

TEST(GraphTest, ConnectivityCheck) {
  Graph g;
  EXPECT_TRUE(g.IsConnected());  // Empty graph.
  const VertexId a = g.AddVertex(0);
  EXPECT_TRUE(g.IsConnected());
  const VertexId b = g.AddVertex(0);
  EXPECT_FALSE(g.IsConnected());
  EXPECT_TRUE(g.AddEdge(a, b, 0));
  EXPECT_TRUE(g.IsConnected());
}

TEST(GraphTest, MaxDegree) {
  Graph g = MakeTriangle();
  EXPECT_EQ(g.MaxDegree(), 2);
  const VertexId d = g.AddVertex(0);
  EXPECT_TRUE(g.AddEdge(0, d, 0));
  EXPECT_EQ(g.MaxDegree(), 3);
}

TEST(GraphTest, EqualityIsStructural) {
  Graph a = MakeTriangle();
  Graph b = MakeTriangle();
  EXPECT_EQ(a, b);
  EXPECT_TRUE(b.RemoveEdge(0, 1));
  EXPECT_FALSE(a == b);
}

TEST(GraphChangeTest, ApplyRunsDeletionsBeforeInsertions) {
  Graph g = MakeTriangle();
  GraphChange change;
  // Inserting (0,1) would fail if deletions did not run first.
  change.ops.push_back(EdgeOp::Insert(0, 1, 7, 1, 2));
  change.ops.push_back(EdgeOp::Delete(0, 1));
  EXPECT_EQ(ApplyChange(change, g), 2);
  EXPECT_EQ(g.GetEdgeLabel(0, 1), 7);
}

TEST(GraphChangeTest, ApplySkipsInvalidOps) {
  Graph g = MakeTriangle();
  GraphChange change;
  change.ops.push_back(EdgeOp::Delete(0, 9));       // Absent edge.
  change.ops.push_back(EdgeOp::Insert(0, 1, 0, 1, 2));  // Duplicate.
  change.ops.push_back(EdgeOp::Insert(0, 0, 0, 1, 1));  // Self loop.
  EXPECT_EQ(ApplyChange(change, g), 0);
  EXPECT_EQ(g, MakeTriangle());
}

TEST(GraphChangeTest, InsertMaterializesNewVertices) {
  Graph g;
  g.AddVertex(1);
  GraphChange change;
  change.ops.push_back(EdgeOp::Insert(0, 5, 2, 1, 9));
  EXPECT_EQ(ApplyChange(change, g), 1);
  EXPECT_TRUE(g.HasVertex(5));
  EXPECT_EQ(g.GetVertexLabel(5), 9);
  EXPECT_EQ(g.GetEdgeLabel(0, 5), 2);
}

TEST(GraphChangeTest, DiffThenApplyReproducesTarget) {
  Graph from = MakeTriangle();
  Graph to = MakeTriangle();
  EXPECT_TRUE(to.RemoveEdge(0, 1));
  const VertexId d = to.AddVertex(4);
  EXPECT_TRUE(to.AddEdge(2, d, 5));

  const GraphChange diff = DiffGraphs(from, to);
  ApplyChange(diff, from);
  EXPECT_EQ(from, to);
}

TEST(GraphChangeTest, DiffHandlesEdgeRelabel) {
  Graph from = MakeTriangle();
  Graph to = MakeTriangle();
  EXPECT_TRUE(to.RemoveEdge(0, 1));
  EXPECT_TRUE(to.AddEdge(0, 1, 9));
  const GraphChange diff = DiffGraphs(from, to);
  ApplyChange(diff, from);
  EXPECT_EQ(from, to);
}

TEST(GraphChangeTest, DiffApplyRandomProperty) {
  // apply(diff(a, b), a) == b for random same-vertex-set graph pairs.
  Rng rng(8);
  for (int trial = 0; trial < 30; ++trial) {
    Graph a, b;
    constexpr int kVertices = 8;
    for (int i = 0; i < kVertices; ++i) {
      const VertexLabel label =
          static_cast<VertexLabel>(rng.UniformInt(0, 2));
      a.AddVertex(label);
      b.AddVertex(label);
    }
    for (int k = 0; k < 12; ++k) {
      const VertexId u = static_cast<VertexId>(rng.UniformInt(0, 7));
      const VertexId v = static_cast<VertexId>(rng.UniformInt(0, 7));
      if (u == v) continue;
      if (rng.Bernoulli(0.5)) {
        a.AddEdge(u, v, static_cast<EdgeLabel>(rng.UniformInt(0, 1)));
      }
      if (rng.Bernoulli(0.5)) {
        b.AddEdge(u, v, static_cast<EdgeLabel>(rng.UniformInt(0, 1)));
      }
    }
    ApplyChange(DiffGraphs(a, b), a);
    EXPECT_EQ(a, b) << "trial " << trial;
  }
}

TEST(GraphStreamTest, MaterializeReplaysChanges) {
  GraphStream stream(MakeTriangle());
  GraphChange c1;
  c1.ops.push_back(EdgeOp::Delete(0, 1));
  stream.AppendChange(c1);
  GraphChange c2;
  c2.ops.push_back(EdgeOp::Insert(0, 3, 0, 1, 8));
  stream.AppendChange(c2);

  EXPECT_EQ(stream.NumTimestamps(), 3);
  EXPECT_EQ(stream.MaterializeAt(0), MakeTriangle());
  EXPECT_FALSE(stream.MaterializeAt(1).HasEdge(0, 1));
  const Graph at2 = stream.MaterializeAt(2);
  EXPECT_TRUE(at2.HasVertex(3));
  EXPECT_TRUE(at2.HasEdge(0, 3));
}

TEST(GraphStreamTest, CursorMatchesMaterialize) {
  GraphStream stream(MakeTriangle());
  for (int t = 0; t < 4; ++t) {
    GraphChange change;
    if (t % 2 == 0) {
      change.ops.push_back(EdgeOp::Delete(0, 1));
    } else {
      change.ops.push_back(EdgeOp::Insert(0, 1, 0, 1, 2));
    }
    stream.AppendChange(change);
  }
  StreamCursor cursor(stream);
  EXPECT_EQ(cursor.CurrentGraph(), stream.MaterializeAt(0));
  while (cursor.HasNext()) {
    cursor.Advance();
    EXPECT_EQ(cursor.CurrentGraph(),
              stream.MaterializeAt(cursor.CurrentTimestamp()));
  }
  EXPECT_EQ(cursor.CurrentTimestamp(), 4);
}

TEST(GraphIoTest, RoundTripSingleGraph) {
  const Graph g = MakeTriangle();
  const std::string text = FormatGraph(g);
  const std::optional<Graph> parsed = ParseGraph(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, g);
}

TEST(GraphIoTest, RoundTripDataset) {
  std::vector<Graph> graphs = {MakeTriangle(), Graph()};
  graphs[1].AddVertex(7);
  const std::string text = FormatGraphs(graphs);
  const std::optional<std::vector<Graph>> parsed = ParseGraphs(text);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0], graphs[0]);
  EXPECT_EQ((*parsed)[1], graphs[1]);
}

TEST(GraphIoTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(ParseGraph("x 1 2\n").has_value());
  EXPECT_FALSE(ParseGraph("v 0 1\nv 0 2\n").has_value());   // Duplicate id.
  EXPECT_FALSE(ParseGraph("e 0 1 0\n").has_value());        // Edge first.
  EXPECT_FALSE(ParseGraph("v 0\n").has_value());            // Missing field.
}

TEST(GraphIoTest, ParseReportsLineAndReason) {
  IoError error;
  EXPECT_FALSE(ParseGraph("v 0 1\nv 1 1\ne 0 1\n", &error).has_value());
  EXPECT_EQ(error.line, 3);
  EXPECT_NE(error.message.find("truncated edge"), std::string::npos);
  EXPECT_EQ(error.ToString(), "line 3: " + error.message);

  // Out-of-range ids are rejected before they can reach the engine's dense
  // vertex table (negative ids would trip a check, huge ones would OOM).
  EXPECT_FALSE(ParseGraph("v -1 1\n", &error).has_value());
  EXPECT_NE(error.message.find("out of range"), std::string::npos);
  EXPECT_FALSE(ParseGraph("v 3000000 1\n", &error).has_value());
  EXPECT_NE(error.message.find("out of range"), std::string::npos);
  EXPECT_FALSE(ParseGraph("v 0 1\nv 1 1\ne 1 1 0\n", &error).has_value());
  EXPECT_NE(error.message.find("self-loop"), std::string::npos);
  EXPECT_FALSE(
      ParseGraph("v 0 1\nv 1 1\ne 0 1 0\ne 1 0 2\n", &error).has_value());
  EXPECT_EQ(error.line, 4);
  EXPECT_NE(error.message.find("duplicate edge"), std::string::npos);

  // A stray dataset separator in single-graph input, and records before
  // any separator in dataset input.
  EXPECT_FALSE(ParseGraph("v 0 1\ng 1\n", &error).has_value());
  EXPECT_EQ(error.line, 2);
  EXPECT_FALSE(ParseGraphs("v 0 1\n", &error).has_value());
  EXPECT_EQ(error.line, 1);
  EXPECT_NE(error.message.find("'g <index>' separator"), std::string::npos);
}

TEST(GraphIoTest, ParseIgnoresCommentsAndBlankLines) {
  const std::optional<Graph> parsed =
      ParseGraph("# comment\n\nv 0 1\nv 1 2\n# another\ne 0 1 3\n");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->NumVertices(), 2);
  EXPECT_EQ(parsed->GetEdgeLabel(0, 1), 3);
}

}  // namespace
}  // namespace gsps
