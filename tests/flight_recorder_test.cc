// Tests for the flight recorder (gsps/obs/flight_recorder.h): ring
// round-trip through a dump file (including overwrite past the ring
// capacity), seqlock-published window/cumulative sections, the SIGUSR1
// dump-and-continue handler, and Disarm. The recorder is exercised through
// its public API (direct RecordSpan/Publish calls), which works in both
// build modes — only the engine instrumentation that would feed it is
// compiled out under GSPS_OBS_DISABLED.

#include "gsps/obs/flight_recorder.h"

#include <csignal>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gsps/obs/metrics.h"
#include "gsps/obs/window.h"
#include "test_json.h"

namespace gsps {
namespace {

using obs::Counter;
using obs::FlightRecorder;
using obs::FlightSpan;
using obs::MetricSink;
using ::gsps::testing::CountOccurrences;
using ::gsps::testing::JsonParser;

std::string DumpPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

FlightSpan MakeSpan(uint64_t span_id) {
  FlightSpan span;
  span.name = "unit_span";
  span.category = "test";
  span.stage = 2;
  span.stream = 1;
  span.query = 4;
  span.ts_micros = static_cast<int64_t>(span_id) * 10;
  span.dur_micros = 7;
  span.span_id = span_id;
  return span;
}

// Every test leaves the recorder disarmed and empty so the rest of the
// test binary (and ctest siblings sharing the process) see the default.
class FlightRecorderTest : public ::testing::Test {
 protected:
  void TearDown() override {
    FlightRecorder::Global().Disarm();
    FlightRecorder::Global().Reset();
  }
};

TEST_F(FlightRecorderTest, DumpRoundTripParsesBack) {
  const std::string path = DumpPath("fr_roundtrip.json");
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.Arm(path.c_str());
  recorder.Reset();
  for (uint64_t id = 1; id <= 5; ++id) recorder.RecordSpan(MakeSpan(id));

  ASSERT_TRUE(recorder.DumpNow());
  const std::string text = ReadWholeFile(path);
  JsonParser parser(text);
  EXPECT_TRUE(parser.Valid()) << text;
  EXPECT_EQ(CountOccurrences(text, "\"name\":\"unit_span\""), 5);
  EXPECT_EQ(CountOccurrences(text, "\"torn_spans\":0"), 1);
  // Nothing published yet: both aggregate sections are null.
  EXPECT_NE(text.find("\"window\":null"), std::string::npos);
  EXPECT_NE(text.find("\"cumulative\":null"), std::string::npos);
  // Spans dump oldest first with their recorded identity intact.
  EXPECT_LT(text.find("\"span_id\":1"), text.find("\"span_id\":5"));
  EXPECT_NE(text.find("\"stage\":2"), std::string::npos);
  EXPECT_NE(text.find("\"stream\":1"), std::string::npos);
  EXPECT_NE(text.find("\"query\":4"), std::string::npos);
}

TEST_F(FlightRecorderTest, RingOverwritesOldestPastCapacity) {
  const std::string path = DumpPath("fr_overwrite.json");
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.Arm(path.c_str());
  recorder.Reset();
  const int total = obs::kFlightRingSize + 10;
  for (int id = 1; id <= total; ++id) {
    recorder.RecordSpan(MakeSpan(static_cast<uint64_t>(id)));
  }

  ASSERT_TRUE(recorder.DumpNow());
  const std::string text = ReadWholeFile(path);
  JsonParser parser(text);
  EXPECT_TRUE(parser.Valid()) << text;
  EXPECT_EQ(CountOccurrences(text, "\"name\":\"unit_span\""),
            obs::kFlightRingSize);
  // The ten oldest spans were overwritten; the newest survive.
  EXPECT_EQ(text.find("\"span_id\":10}"), std::string::npos);
  EXPECT_NE(text.find("\"span_id\":11}"), std::string::npos);
  EXPECT_NE(text.find("\"span_id\":" + std::to_string(total) + "}"),
            std::string::npos);
}

TEST_F(FlightRecorderTest, PublishedWindowAndCumulativeAppearInDump) {
  const std::string path = DumpPath("fr_published.json");
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.Arm(path.c_str());
  recorder.Reset();

  obs::WindowSnapshot window;
  window.seq = 42;
  window.duration_micros = 1000;
  window.delta.Add(Counter::kNntInsertEdges, 17);
  recorder.PublishWindow(window);
  MetricSink cumulative;
  cumulative.Add(Counter::kNntInsertEdges, 99);
  recorder.PublishCumulative(cumulative);

  ASSERT_TRUE(recorder.DumpNow());
  const std::string text = ReadWholeFile(path);
  JsonParser parser(text);
  EXPECT_TRUE(parser.Valid()) << text;
  EXPECT_NE(text.find("\"window\":{\"seq\":42"), std::string::npos);
  EXPECT_NE(text.find("\"duration_micros\":1000"), std::string::npos);
  EXPECT_EQ(text.find("\"window\":null"), std::string::npos);
  EXPECT_EQ(text.find("\"cumulative\":null"), std::string::npos);
  // The cumulative section carries the published counter value.
  const size_t cumulative_at = text.find("\"cumulative\":{");
  ASSERT_NE(cumulative_at, std::string::npos);
  EXPECT_NE(text.find("\"gsps_nnt_insert_edges\":99", cumulative_at),
            std::string::npos);
}

TEST_F(FlightRecorderTest, RegistryBarrierPublishesWhileArmed) {
  // MergeAndReset publishes the cumulative aggregate and
  // WindowedTelemetry::Advance the closed window — the live wiring the
  // monitor's final dump depends on.
  const std::string path = DumpPath("fr_registry.json");
  obs::MetricsRegistry::Global().Reset();
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.Arm(path.c_str());
  recorder.Reset();

  MetricSink sink;
  sink.Add(Counter::kNntInsertEdges, 13);
  obs::MetricsRegistry::Global().MergeAndReset(sink);
  obs::WindowedTelemetry::Global().Advance();

  ASSERT_TRUE(recorder.DumpNow());
  const std::string text = ReadWholeFile(path);
  JsonParser parser(text);
  EXPECT_TRUE(parser.Valid()) << text;
  EXPECT_NE(text.find("\"window\":{\"seq\":1"), std::string::npos);
  const size_t cumulative_at = text.find("\"cumulative\":{");
  ASSERT_NE(cumulative_at, std::string::npos);
  EXPECT_NE(text.find("\"gsps_nnt_insert_edges\":13", cumulative_at),
            std::string::npos);
  obs::MetricsRegistry::Global().Reset();
}

TEST_F(FlightRecorderTest, SigUsr1DumpsAndContinues) {
  const std::string path = DumpPath("fr_sigusr1.json");
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.Arm(path.c_str());
  recorder.Reset();
  for (uint64_t id = 1; id <= 3; ++id) recorder.RecordSpan(MakeSpan(id));

  ASSERT_EQ(std::raise(SIGUSR1), 0);
  // The handler returned (we are still running) and wrote a parseable dump.
  const std::string text = ReadWholeFile(path);
  ASSERT_FALSE(text.empty());
  JsonParser parser(text);
  EXPECT_TRUE(parser.Valid()) << text;
  EXPECT_EQ(CountOccurrences(text, "\"name\":\"unit_span\""), 3);

  // Recording keeps working after the signal dump.
  recorder.RecordSpan(MakeSpan(4));
  ASSERT_TRUE(recorder.DumpNow());
  EXPECT_EQ(CountOccurrences(ReadWholeFile(path), "\"name\":\"unit_span\""),
            4);
}

TEST_F(FlightRecorderTest, DisarmStopsRecordingAndArmedReadsFalse) {
  const std::string path = DumpPath("fr_disarm.json");
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.Arm(path.c_str());
  EXPECT_TRUE(obs::FlightRecorderArmed());
  recorder.Reset();
  recorder.Disarm();
  EXPECT_FALSE(obs::FlightRecorderArmed());
  recorder.RecordSpan(MakeSpan(1));  // No-op while disarmed.

  // DumpNow from normal code still works while disarmed; the ring is empty.
  ASSERT_TRUE(recorder.DumpNow());
  const std::string text = ReadWholeFile(path);
  JsonParser parser(text);
  EXPECT_TRUE(parser.Valid()) << text;
  EXPECT_NE(text.find("\"spans\":[]"), std::string::npos);
}

}  // namespace
}  // namespace gsps
