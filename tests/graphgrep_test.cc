// Tests for the GraphGrep-style path-fingerprint baseline.

#include "gsps/baselines/graphgrep/graphgrep_filter.h"

#include <gtest/gtest.h>

#include "gsps/common/random.h"
#include "gsps/gen/query_extractor.h"
#include "gsps/gen/synthetic_generator.h"
#include "gsps/iso/subgraph_isomorphism.h"

namespace gsps {
namespace {

Graph Path(std::initializer_list<VertexLabel> labels) {
  Graph g;
  VertexId prev = kInvalidVertex;
  for (const VertexLabel label : labels) {
    const VertexId v = g.AddVertex(label);
    if (prev != kInvalidVertex) {
      EXPECT_TRUE(g.AddEdge(prev, v, 0));
    }
    prev = v;
  }
  return g;
}

TEST(PathIndexTest, CountsVerticesAndPaths) {
  const Graph g = Path({1, 2, 3});
  const PathIndex index(g, 2);
  // 3 length-0 + 4 directed length-1 + 2 directed length-2.
  EXPECT_EQ(index.TotalPaths(), 9);
}

TEST(PathIndexTest, SubgraphFingerprintIsContained) {
  const Graph g = Path({1, 2, 3, 1});
  const Graph q = Path({2, 3});
  const PathIndex gi(g, 4);
  const PathIndex qi(q, 4);
  EXPECT_TRUE(gi.MayContain(qi));
  EXPECT_FALSE(qi.MayContain(gi));
}

TEST(PathIndexTest, LabelCountMismatchFiltersOut) {
  const Graph g = Path({1, 2});
  const Graph q = Path({1, 1});  // Needs two vertices labeled 1.
  EXPECT_FALSE(PathIndex(g, 4).MayContain(PathIndex(q, 4)));
}

TEST(PathIndexTest, PathCountsPruneDespiteLabelMatch) {
  // Star with three leaves vs path: same label multiset possible, but the
  // query path of length 2 through distinct labels is absent in the star's
  // center-to-leaf structure when labels differ.
  Graph star;
  star.AddVertex(1);
  for (VertexLabel l : {2, 3, 4}) {
    const VertexId v = star.AddVertex(l);
    ASSERT_TRUE(star.AddEdge(0, v, 0));
  }
  const Graph q = Path({2, 3, 4});  // No such path in the star.
  EXPECT_FALSE(PathIndex(star, 4).MayContain(PathIndex(q, 4)));
}

TEST(GraphGrepFilterTest, NoFalseNegativesOnRandomWorkload) {
  Rng rng(31);
  SyntheticParams params;
  params.num_graphs = 30;
  params.num_seeds = 6;
  params.avg_seed_edges = 5;
  params.avg_graph_edges = 20;
  params.num_vertex_labels = 3;
  const std::vector<Graph> dataset = GenerateSyntheticDataset(params);
  const std::vector<Graph> queries = ExtractQuerySet(dataset, 4, 10, rng);
  ASSERT_FALSE(queries.empty());

  GraphGrepFilter filter(4);
  filter.SetQueries(queries);
  int64_t true_pairs = 0;
  for (const Graph& data : dataset) {
    const std::vector<int> candidates = filter.CandidateQueries(data);
    for (size_t j = 0; j < queries.size(); ++j) {
      if (IsSubgraphIsomorphic(queries[j], data)) {
        ++true_pairs;
        EXPECT_TRUE(std::find(candidates.begin(), candidates.end(),
                              static_cast<int>(j)) != candidates.end());
      }
    }
  }
  EXPECT_GT(true_pairs, 0);
}

TEST(GraphGrepFilterTest, DatabaseDirectionMatchesQueryDirection) {
  Rng rng(32);
  SyntheticParams params;
  params.num_graphs = 15;
  params.num_seeds = 4;
  params.avg_seed_edges = 4;
  params.avg_graph_edges = 15;
  const std::vector<Graph> dataset = GenerateSyntheticDataset(params);
  const std::vector<Graph> queries = ExtractQuerySet(dataset, 3, 5, rng);
  ASSERT_FALSE(queries.empty());

  GraphGrepFilter by_query(4);
  by_query.SetQueries(queries);
  GraphGrepFilter by_database(4);
  by_database.IndexDatabase(dataset);

  for (size_t i = 0; i < dataset.size(); ++i) {
    const std::vector<int> from_data =
        by_query.CandidateQueries(dataset[i]);
    for (size_t j = 0; j < queries.size(); ++j) {
      const std::vector<int> from_query =
          by_database.CandidateGraphsFor(queries[j]);
      const bool a = std::find(from_data.begin(), from_data.end(),
                               static_cast<int>(j)) != from_data.end();
      const bool b = std::find(from_query.begin(), from_query.end(),
                               static_cast<int>(i)) != from_query.end();
      EXPECT_EQ(a, b) << "graph " << i << " query " << j;
    }
  }
}

}  // namespace
}  // namespace gsps
