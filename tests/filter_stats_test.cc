// Tests for MergeParallelSamples and StatsAccumulator: shard-order
// independence, degenerate shard counts, and ground-truth propagation.

#include "gsps/engine/filter_stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace gsps {
namespace {

TimestampStats MakeSample(int timestamp, int64_t candidates, int64_t total,
                          int64_t truth, double update_ms, double join_ms) {
  TimestampStats s;
  s.timestamp = timestamp;
  s.candidate_pairs = candidates;
  s.total_pairs = total;
  s.true_pairs = truth;
  s.update_millis = update_ms;
  s.join_millis = join_ms;
  s.busy_millis = update_ms + join_ms;
  return s;
}

TEST(FilterStatsTest, MergeSumsCountsAndTakesMaxCosts) {
  const std::vector<TimestampStats> shards = {
      MakeSample(7, 3, 10, 2, 1.5, 4.0),
      MakeSample(7, 1, 6, 1, 2.5, 0.5),
  };
  const TimestampStats merged = MergeParallelSamples(shards);
  EXPECT_EQ(merged.timestamp, 7);
  EXPECT_EQ(merged.candidate_pairs, 4);
  EXPECT_EQ(merged.total_pairs, 16);
  EXPECT_EQ(merged.true_pairs, 3);
  EXPECT_DOUBLE_EQ(merged.update_millis, 2.5);
  EXPECT_DOUBLE_EQ(merged.join_millis, 4.0);
}

TEST(FilterStatsTest, MergeIsShardOrderIndependent) {
  std::vector<TimestampStats> shards = {
      MakeSample(3, 5, 12, 4, 0.25, 1.0),
      MakeSample(3, 0, 4, 0, 3.0, 0.125),
      MakeSample(3, 2, 9, 2, 1.0, 2.0),
      MakeSample(3, 7, 20, -1, 0.5, 0.5),
  };
  const TimestampStats reference = MergeParallelSamples(shards);
  std::sort(shards.begin(), shards.end(),
            [](const TimestampStats& a, const TimestampStats& b) {
              return a.candidate_pairs < b.candidate_pairs;
            });
  do {
    const TimestampStats merged = MergeParallelSamples(shards);
    EXPECT_EQ(merged.candidate_pairs, reference.candidate_pairs);
    EXPECT_EQ(merged.total_pairs, reference.total_pairs);
    EXPECT_EQ(merged.true_pairs, reference.true_pairs);
    EXPECT_DOUBLE_EQ(merged.update_millis, reference.update_millis);
    EXPECT_DOUBLE_EQ(merged.join_millis, reference.join_millis);
  } while (std::next_permutation(
      shards.begin(), shards.end(),
      [](const TimestampStats& a, const TimestampStats& b) {
        return a.candidate_pairs < b.candidate_pairs;
      }));
}

TEST(FilterStatsTest, MergeOfZeroShardsIsTheEmptySample) {
  const TimestampStats merged = MergeParallelSamples({});
  EXPECT_EQ(merged.timestamp, 0);
  EXPECT_EQ(merged.candidate_pairs, 0);
  EXPECT_EQ(merged.total_pairs, 0);
  EXPECT_EQ(merged.true_pairs, -1);
  EXPECT_DOUBLE_EQ(merged.update_millis, 0.0);
  EXPECT_DOUBLE_EQ(merged.join_millis, 0.0);
}

TEST(FilterStatsTest, MergeOfOneShardIsThatShard) {
  const TimestampStats s = MakeSample(2, 8, 11, 5, 0.75, 1.25);
  const TimestampStats merged = MergeParallelSamples({s});
  EXPECT_EQ(merged.timestamp, s.timestamp);
  EXPECT_EQ(merged.candidate_pairs, s.candidate_pairs);
  EXPECT_EQ(merged.total_pairs, s.total_pairs);
  EXPECT_EQ(merged.true_pairs, s.true_pairs);
  EXPECT_DOUBLE_EQ(merged.update_millis, s.update_millis);
  EXPECT_DOUBLE_EQ(merged.join_millis, s.join_millis);
}

TEST(FilterStatsTest, MissingTruthOnAnyShardPoisonsTheMerge) {
  // One shard without ground truth makes the merged truth unknown,
  // regardless of where that shard sits in the list.
  for (int missing = 0; missing < 3; ++missing) {
    std::vector<TimestampStats> shards;
    for (int i = 0; i < 3; ++i) {
      shards.push_back(MakeSample(1, i, 5, i == missing ? -1 : i, 0.0, 0.0));
    }
    EXPECT_EQ(MergeParallelSamples(shards).true_pairs, -1) << missing;
  }
}

TEST(FilterStatsTest, MergeSumsBusyAcrossShards) {
  // Costs take the barrier's critical path (max), but busy time is
  // aggregate work and must sum — that difference is what exposes the
  // busy vs. barrier-wait split.
  const std::vector<TimestampStats> shards = {
      MakeSample(1, 0, 4, -1, 3.0, 1.0),
      MakeSample(1, 0, 4, -1, 1.0, 2.0),
  };
  const TimestampStats merged = MergeParallelSamples(shards);
  EXPECT_DOUBLE_EQ(merged.update_millis, 3.0);
  EXPECT_DOUBLE_EQ(merged.join_millis, 2.0);
  EXPECT_DOUBLE_EQ(merged.busy_millis, 7.0);
}

TEST(FilterStatsTest, CostPercentilesUseNearestRank) {
  StatsAccumulator acc;
  // Costs 1..10 ms (update + join split arbitrarily), inserted out of order.
  for (const int cost : {7, 2, 10, 1, 5, 3, 9, 4, 8, 6}) {
    acc.Add(MakeSample(cost, 0, 1, -1, cost * 0.25, cost * 0.75));
  }
  EXPECT_DOUBLE_EQ(acc.CostPercentileMillis(50.0), 5.0);
  EXPECT_DOUBLE_EQ(acc.CostPercentileMillis(95.0), 10.0);
  EXPECT_DOUBLE_EQ(acc.CostPercentileMillis(90.0), 9.0);
  EXPECT_DOUBLE_EQ(acc.CostPercentileMillis(100.0), 10.0);
  EXPECT_DOUBLE_EQ(acc.MaxCostMillis(), 10.0);
  EXPECT_DOUBLE_EQ(acc.AvgBusyMillis(), 5.5);
}

TEST(FilterStatsTest, PercentilesOfSingleSampleAndEmpty) {
  StatsAccumulator empty;
  EXPECT_DOUBLE_EQ(empty.CostPercentileMillis(50.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.MaxCostMillis(), 0.0);
  EXPECT_DOUBLE_EQ(empty.AvgBusyMillis(), 0.0);

  StatsAccumulator one;
  one.Add(MakeSample(0, 0, 1, -1, 1.5, 2.5));
  EXPECT_DOUBLE_EQ(one.CostPercentileMillis(50.0), 4.0);
  EXPECT_DOUBLE_EQ(one.CostPercentileMillis(95.0), 4.0);
  EXPECT_DOUBLE_EQ(one.MaxCostMillis(), 4.0);
}

TEST(FilterStatsTest, AccumulatorHandlesMergedEmptySamples) {
  StatsAccumulator acc;
  acc.Add(MergeParallelSamples({}));
  acc.Add(MakeSample(1, 2, 4, 2, 1.0, 1.0));
  EXPECT_EQ(acc.num_timestamps(), 2);
  // The empty sample has no ground truth, so precision averages over the
  // one sample that does; candidates never drop below truth.
  EXPECT_DOUBLE_EQ(acc.AvgPrecision(), 1.0);
  EXPECT_TRUE(acc.CandidatesNeverBelowTruth());
}

}  // namespace
}  // namespace gsps
