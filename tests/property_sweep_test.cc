// Parameterized property sweeps across workload regimes.
//
// These complement the per-module tests with broader randomized coverage:
// every combination of (label alphabet, density regime) is exercised for
//   * the no-false-negative guarantee of the full NPV pipeline,
//   * strategy agreement (NL == DSC == Skyline),
//   * the pruning-power chain: exact iso  =>  branch compatible  =>
//     NPV candidate (each filter is weaker than the previous, never wrong),
//   * NNT incremental maintenance under batched changes through the engine.

#include <gtest/gtest.h>

#include <tuple>

#include "gsps/common/random.h"
#include "gsps/engine/continuous_query_engine.h"
#include "gsps/gen/query_extractor.h"
#include "gsps/gen/stream_generator.h"
#include "gsps/gen/synthetic_generator.h"
#include "gsps/iso/branch_compatibility.h"
#include "gsps/iso/subgraph_isomorphism.h"
#include "gsps/join/dominance.h"
#include "gsps/nnt/nnt_set.h"
#include "gsps/nnt/subtree_filter.h"

namespace gsps {
namespace {

struct Regime {
  int num_labels;
  double p_appear;
  double p_disappear;
  double extra_pairs;
};

class PipelineSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  // (labels, density index) -> workload regime.
  Regime GetRegime() const {
    const int labels = std::get<0>(GetParam());
    const bool dense = std::get<1>(GetParam()) == 1;
    return Regime{labels, dense ? 0.3 : 0.12, dense ? 0.15 : 0.3,
                  dense ? 3.0 : 1.5};
  }
};

TEST_P(PipelineSweepTest, NoFalseNegativesAndStrategyAgreement) {
  const Regime regime = GetRegime();
  SyntheticStreamParams params;
  params.num_pairs = 4;
  params.avg_graph_edges = 9;
  params.num_vertex_labels = regime.num_labels;
  params.evolution.p_appear = regime.p_appear;
  params.evolution.p_disappear = regime.p_disappear;
  params.evolution.extra_pair_fraction = regime.extra_pairs;
  params.evolution.num_timestamps = 15;
  params.seed = 1000 + static_cast<uint64_t>(regime.num_labels);
  const StreamDataset dataset = MakeSyntheticStreams(params);

  Rng rng(55);
  std::vector<Graph> snapshots;
  for (const GraphStream& s : dataset.streams) {
    snapshots.push_back(s.MaterializeAt(s.NumTimestamps() / 2));
  }
  const std::vector<Graph> queries = ExtractQuerySet(snapshots, 3, 4, rng);
  if (queries.empty()) GTEST_SKIP() << "no extractable queries";

  std::vector<std::unique_ptr<ContinuousQueryEngine>> engines;
  for (const JoinKind kind :
       {JoinKind::kNestedLoop, JoinKind::kDominatedSetCover,
        JoinKind::kSkylineEarlyStop}) {
    EngineOptions options;
    options.nnt_depth = 3;
    options.join_kind = kind;
    auto engine = std::make_unique<ContinuousQueryEngine>(options);
    for (const Graph& q : queries) engine->AddQuery(q);
    for (const GraphStream& s : dataset.streams) {
      engine->AddStream(s.StartGraph());
    }
    engine->Start();
    engines.push_back(std::move(engine));
  }

  for (int t = 0; t < params.evolution.num_timestamps; ++t) {
    if (t > 0) {
      for (size_t i = 0; i < dataset.streams.size(); ++i) {
        for (auto& engine : engines) {
          engine->ApplyChange(static_cast<int>(i),
                              dataset.streams[i].ChangeAt(t));
        }
      }
    }
    for (size_t i = 0; i < dataset.streams.size(); ++i) {
      const auto reference =
          engines[0]->CandidatesForStream(static_cast<int>(i));
      for (size_t e = 1; e < engines.size(); ++e) {
        ASSERT_EQ(engines[e]->CandidatesForStream(static_cast<int>(i)),
                  reference);
      }
      for (size_t j = 0; j < queries.size(); ++j) {
        if (IsSubgraphIsomorphic(queries[j],
                                 engines[0]->StreamGraph(static_cast<int>(i)))) {
          EXPECT_TRUE(std::find(reference.begin(), reference.end(),
                                static_cast<int>(j)) != reference.end())
              << "false negative at t=" << t;
        }
      }
    }
  }
}

TEST_P(PipelineSweepTest, FilterChainIsMonotone) {
  // exact iso => subtree embeddable => branch compatible => NPV candidate,
  // at every depth.
  const Regime regime = GetRegime();
  SyntheticParams params;
  params.num_graphs = 10;
  params.num_seeds = 4;
  params.avg_seed_edges = 4;
  params.avg_graph_edges = 12;
  params.num_vertex_labels = regime.num_labels;
  params.seed = 2000 + static_cast<uint64_t>(regime.num_labels) +
                static_cast<uint64_t>(std::get<1>(GetParam()));
  const std::vector<Graph> database = GenerateSyntheticDataset(params);
  Rng rng(31);
  const std::vector<Graph> queries = ExtractQuerySet(database, 4, 6, rng);
  if (queries.empty()) GTEST_SKIP();

  for (int depth = 1; depth <= 3; ++depth) {
    DimensionTable dims;
    std::vector<QueryVectors> query_vectors;
    for (const Graph& q : queries) {
      NntSet nnts(depth, &dims);
      nnts.Build(q);
      query_vectors.push_back(BuildQueryVectors(nnts));
    }
    std::vector<std::unique_ptr<NntSet>> query_nnts;
    for (const Graph& q : queries) {
      auto nnts = std::make_unique<NntSet>(depth, &dims);
      nnts->Build(q);
      query_nnts.push_back(std::move(nnts));
    }
    auto strategy = MakeJoinStrategy(JoinKind::kNestedLoop);
    strategy->SetQueries(query_vectors);
    strategy->SetNumStreams(static_cast<int>(database.size()));
    std::vector<std::unique_ptr<NntSet>> data_nnts;
    for (size_t i = 0; i < database.size(); ++i) {
      auto nnts = std::make_unique<NntSet>(depth, &dims);
      nnts->Build(database[i]);
      for (const VertexId root : nnts->Roots()) {
        strategy->UpdateStreamVertex(static_cast<int>(i), root,
                                     nnts->NpvOf(root));
      }
      data_nnts.push_back(std::move(nnts));
    }
    for (size_t i = 0; i < database.size(); ++i) {
      const auto candidates =
          strategy->CandidatesForStream(static_cast<int>(i));
      for (size_t j = 0; j < queries.size(); ++j) {
        const bool exact = IsSubgraphIsomorphic(queries[j], database[i]);
        const bool subtree = NntSubtreeFilter(*query_nnts[j], *data_nnts[i]);
        const bool branch =
            BranchCompatibleFilter(queries[j], database[i], depth);
        const bool npv = std::find(candidates.begin(), candidates.end(),
                                   static_cast<int>(j)) != candidates.end();
        if (exact) {
          EXPECT_TRUE(subtree) << "iso must imply subtree embed";
        }
        if (subtree) {
          EXPECT_TRUE(branch) << "subtree must imply branch";
        }
        if (branch) {
          EXPECT_TRUE(npv) << "branch-compat must imply NPV";
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, PipelineSweepTest,
    ::testing::Combine(::testing::Values(2, 3, 6),
                       ::testing::Values(0, 1)),
    [](const auto& info) {
      return "labels" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == 1 ? "_dense" : "_sparse");
    });

// Batched-change property: applying a whole GraphChange through the engine
// equals materializing the target graph from scratch, for every batch
// composition (multi-insert, multi-delete, mixed, vertex-introducing).
class BatchChangeTest : public ::testing::TestWithParam<int> {};

TEST_P(BatchChangeTest, EngineMatchesFreshEngineAfterRandomBatches) {
  Rng rng(3000 + static_cast<uint64_t>(GetParam()));
  Graph start;
  constexpr int kVertices = 10;
  for (int i = 0; i < kVertices; ++i) {
    start.AddVertex(static_cast<VertexLabel>(rng.UniformInt(0, 2)));
  }
  for (int i = 0; i < 8; ++i) {
    start.AddEdge(static_cast<VertexId>(rng.UniformInt(0, kVertices - 1)),
                  static_cast<VertexId>(rng.UniformInt(0, kVertices - 1)), 0);
  }
  Graph pattern;
  pattern.AddVertex(0);
  pattern.AddVertex(1);
  pattern.AddVertex(2);
  pattern.AddEdge(0, 1, 0);
  pattern.AddEdge(1, 2, 0);

  EngineOptions options;
  options.nnt_depth = 3;
  ContinuousQueryEngine engine(options);
  engine.AddQuery(pattern);
  engine.AddStream(start);
  engine.Start();

  for (int step = 0; step < 12; ++step) {
    GraphChange batch;
    const int ops = static_cast<int>(rng.UniformInt(1, 6));
    for (int k = 0; k < ops; ++k) {
      const VertexId a =
          static_cast<VertexId>(rng.UniformInt(0, kVertices + 1));
      const VertexId b =
          static_cast<VertexId>(rng.UniformInt(0, kVertices + 1));
      if (a == b) continue;
      if (rng.Bernoulli(0.5)) {
        batch.ops.push_back(EdgeOp::Delete(a, b));
      } else {
        batch.ops.push_back(EdgeOp::Insert(
            a, b, 0, static_cast<VertexLabel>(rng.UniformInt(0, 2)),
            static_cast<VertexLabel>(rng.UniformInt(0, 2))));
      }
    }
    engine.ApplyChange(0, batch);

    ContinuousQueryEngine fresh(options);
    fresh.AddQuery(pattern);
    fresh.AddStream(engine.StreamGraph(0));
    fresh.Start();
    ASSERT_EQ(engine.CandidatesForStream(0), fresh.CandidatesForStream(0))
        << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchChangeTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace gsps
