// Tests for the three join strategies.
//
// Key properties:
//   * NL, DSC, and Skyline return identical candidate sets on arbitrary
//     workloads, including after incremental updates and vertex removals;
//   * the candidate set never misses a truly isomorphic pair (Lemma 4.2,
//     the paper's no-false-negative guarantee), verified against VF2;
//   * the candidate set is exactly { (G,Q) : every query vertex NPV is
//     dominated by some stream vertex NPV } (checked by explicit recompute).

#include "gsps/join/join_strategy.h"

#include <gtest/gtest.h>

#include <memory>

#include "gsps/common/random.h"
#include "gsps/engine/continuous_query_engine.h"
#include "gsps/gen/query_extractor.h"
#include "gsps/gen/stream_generator.h"
#include "gsps/gen/synthetic_generator.h"
#include "gsps/iso/subgraph_isomorphism.h"
#include "gsps/join/dominance.h"
#include "gsps/nnt/nnt_set.h"

namespace gsps {
namespace {

// Builds QueryVectors straight from NPV maps for hand-crafted cases.
QueryVectors MakeQuery(std::vector<Npv> vectors) {
  return QueryVectors{std::move(vectors)};
}

std::vector<JoinKind> AllKinds() {
  return {JoinKind::kNestedLoop, JoinKind::kDominatedSetCover,
          JoinKind::kSkylineEarlyStop};
}

TEST(JoinStrategyTest, NamesAreStable) {
  EXPECT_EQ(JoinKindName(JoinKind::kNestedLoop), "NL");
  EXPECT_EQ(JoinKindName(JoinKind::kDominatedSetCover), "DSC");
  EXPECT_EQ(JoinKindName(JoinKind::kSkylineEarlyStop), "Skyline");
  for (const JoinKind kind : AllKinds()) {
    EXPECT_EQ(MakeJoinStrategy(kind)->name(), JoinKindName(kind));
  }
}

class JoinKindTest : public ::testing::TestWithParam<JoinKind> {};

TEST_P(JoinKindTest, SingleVectorDominance) {
  auto strategy = MakeJoinStrategy(GetParam());
  std::vector<QueryVectors> queries;
  queries.push_back(MakeQuery({Npv::FromMap({{0, 2}, {1, 1}})}));
  strategy->SetQueries(std::move(queries));
  strategy->SetNumStreams(1);

  // No stream vertices: not covered.
  EXPECT_TRUE(strategy->CandidatesForStream(0).empty());

  // A dominating vector appears.
  strategy->UpdateStreamVertex(0, 0, Npv::FromMap({{0, 2}, {1, 3}}));
  EXPECT_EQ(strategy->CandidatesForStream(0), std::vector<int>{0});

  // It shrinks below the query: no longer covered.
  strategy->UpdateStreamVertex(0, 0, Npv::FromMap({{0, 1}, {1, 3}}));
  EXPECT_TRUE(strategy->CandidatesForStream(0).empty());

  // A second vertex covers it again; then removing it uncovers.
  strategy->UpdateStreamVertex(0, 1, Npv::FromMap({{0, 5}, {1, 1}}));
  EXPECT_EQ(strategy->CandidatesForStream(0), std::vector<int>{0});
  strategy->RemoveStreamVertex(0, 1);
  EXPECT_TRUE(strategy->CandidatesForStream(0).empty());
}

TEST_P(JoinKindTest, CoverageMustComeFromSingleVertexPerQueryVertex) {
  // One query vertex needing {0:2, 1:2}; two stream vertices each dominate
  // one coordinate only. The pair must NOT be a candidate (dominance is per
  // vector, not per coordinate).
  auto strategy = MakeJoinStrategy(GetParam());
  std::vector<QueryVectors> queries;
  queries.push_back(MakeQuery({Npv::FromMap({{0, 2}, {1, 2}})}));
  strategy->SetQueries(std::move(queries));
  strategy->SetNumStreams(1);
  strategy->UpdateStreamVertex(0, 0, Npv::FromMap({{0, 9}}));
  strategy->UpdateStreamVertex(0, 1, Npv::FromMap({{1, 9}}));
  EXPECT_TRUE(strategy->CandidatesForStream(0).empty());
}

TEST_P(JoinKindTest, AllQueryVerticesMustBeCovered) {
  auto strategy = MakeJoinStrategy(GetParam());
  std::vector<QueryVectors> queries;
  queries.push_back(MakeQuery(
      {Npv::FromMap({{0, 1}}), Npv::FromMap({{1, 1}})}));
  strategy->SetQueries(std::move(queries));
  strategy->SetNumStreams(1);
  strategy->UpdateStreamVertex(0, 0, Npv::FromMap({{0, 1}}));
  EXPECT_TRUE(strategy->CandidatesForStream(0).empty());
  strategy->UpdateStreamVertex(0, 1, Npv::FromMap({{1, 1}}));
  EXPECT_EQ(strategy->CandidatesForStream(0), std::vector<int>{0});
}

TEST_P(JoinKindTest, TrivialQueryVectorNeedsNonEmptyStream) {
  // A query vertex with an all-zero NPV (isolated vertex / single-vertex
  // query) is dominated by any vertex, but only if one exists.
  auto strategy = MakeJoinStrategy(GetParam());
  std::vector<QueryVectors> queries;
  queries.push_back(MakeQuery({Npv()}));
  strategy->SetQueries(std::move(queries));
  strategy->SetNumStreams(1);
  EXPECT_TRUE(strategy->CandidatesForStream(0).empty());
  strategy->UpdateStreamVertex(0, 0, Npv());
  EXPECT_EQ(strategy->CandidatesForStream(0), std::vector<int>{0});
}

TEST_P(JoinKindTest, EmptyQueryIsAlwaysCandidate) {
  auto strategy = MakeJoinStrategy(GetParam());
  std::vector<QueryVectors> queries;
  queries.push_back(MakeQuery({}));
  strategy->SetQueries(std::move(queries));
  strategy->SetNumStreams(2);
  EXPECT_EQ(strategy->CandidatesForStream(0), std::vector<int>{0});
  EXPECT_EQ(strategy->CandidatesForStream(1), std::vector<int>{0});
}

TEST_P(JoinKindTest, StreamsAreIndependent) {
  auto strategy = MakeJoinStrategy(GetParam());
  std::vector<QueryVectors> queries;
  queries.push_back(MakeQuery({Npv::FromMap({{0, 1}})}));
  strategy->SetQueries(std::move(queries));
  strategy->SetNumStreams(2);
  strategy->UpdateStreamVertex(1, 0, Npv::FromMap({{0, 4}}));
  EXPECT_TRUE(strategy->CandidatesForStream(0).empty());
  EXPECT_EQ(strategy->CandidatesForStream(1), std::vector<int>{0});
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, JoinKindTest,
                         ::testing::Values(JoinKind::kNestedLoop,
                                           JoinKind::kDominatedSetCover,
                                           JoinKind::kSkylineEarlyStop),
                         [](const auto& info) {
                           return std::string(JoinKindName(info.param));
                         });

// Randomized agreement test: all three strategies see the same stream of
// updates/removals and must agree after every step.
TEST(JoinAgreementTest, RandomVectorWorkload) {
  Rng rng(424242);
  constexpr int kNumQueries = 8;
  constexpr int kNumStreams = 3;
  constexpr int kNumDims = 6;
  constexpr int kSteps = 300;

  std::vector<QueryVectors> queries;
  for (int j = 0; j < kNumQueries; ++j) {
    QueryVectors query;
    const int vectors = static_cast<int>(rng.UniformInt(1, 4));
    for (int v = 0; v < vectors; ++v) {
      std::unordered_map<DimId, int32_t> counts;
      const int nnz = static_cast<int>(rng.UniformInt(0, 3));
      for (int k = 0; k < nnz; ++k) {
        counts[static_cast<DimId>(rng.UniformInt(0, kNumDims - 1))] =
            static_cast<int32_t>(rng.UniformInt(1, 4));
      }
      query.vectors.push_back(Npv::FromMap(counts));
    }
    queries.push_back(std::move(query));
  }

  std::vector<std::unique_ptr<JoinStrategy>> strategies;
  for (const JoinKind kind : AllKinds()) {
    auto strategy = MakeJoinStrategy(kind);
    strategy->SetQueries(queries);
    strategy->SetNumStreams(kNumStreams);
    strategies.push_back(std::move(strategy));
  }

  for (int step = 0; step < kSteps; ++step) {
    const int stream = static_cast<int>(rng.UniformInt(0, kNumStreams - 1));
    const VertexId vertex = static_cast<VertexId>(rng.UniformInt(0, 9));
    if (rng.Bernoulli(0.15)) {
      for (auto& strategy : strategies) {
        strategy->RemoveStreamVertex(stream, vertex);
      }
    } else {
      std::unordered_map<DimId, int32_t> counts;
      const int nnz = static_cast<int>(rng.UniformInt(0, 4));
      for (int k = 0; k < nnz; ++k) {
        counts[static_cast<DimId>(rng.UniformInt(0, kNumDims - 1))] =
            static_cast<int32_t>(rng.UniformInt(1, 5));
      }
      const Npv npv = Npv::FromMap(counts);
      for (auto& strategy : strategies) {
        strategy->UpdateStreamVertex(stream, vertex, npv);
      }
    }
    for (int i = 0; i < kNumStreams; ++i) {
      const std::vector<int> reference = strategies[0]->CandidatesForStream(i);
      for (size_t s = 1; s < strategies.size(); ++s) {
        EXPECT_EQ(strategies[s]->CandidatesForStream(i), reference)
            << "step " << step << " stream " << i << " strategy "
            << strategies[s]->name();
      }
    }
  }
}

// Incremental maintenance: after every engine delta, the cached verdicts
// must equal a fresh strategy fed the current NPVs from scratch, repeated
// reads must be stable (answered from the verdict cache), and the buffer
// overloads must agree with the by-value forms.
TEST(JoinIncrementalTest, CachedVerdictsMatchScratchRecompute) {
  SyntheticStreamParams params;
  params.num_pairs = 5;
  params.avg_graph_edges = 9;
  params.num_vertex_labels = 3;
  params.evolution.num_timestamps = 20;
  params.evolution.p_appear = 0.3;
  params.evolution.p_disappear = 0.25;
  params.seed = 1301;
  const StreamDataset dataset = MakeSyntheticStreams(params);

  Rng rng(17);
  std::vector<Graph> starts;
  for (const GraphStream& stream : dataset.streams) {
    starts.push_back(stream.StartGraph());
  }
  const std::vector<Graph> queries = ExtractQuerySet(starts, 3, 5, rng);
  ASSERT_FALSE(queries.empty());

  for (const JoinKind kind : AllKinds()) {
    EngineOptions options;
    options.nnt_depth = 2;
    options.join_kind = kind;
    ContinuousQueryEngine engine(options);
    for (const Graph& q : queries) engine.AddQuery(q);
    for (const GraphStream& s : dataset.streams) {
      engine.AddStream(s.StartGraph());
    }
    engine.Start();

    std::vector<int> buffer;
    for (int t = 0; t < params.evolution.num_timestamps; ++t) {
      if (t > 0) {
        for (size_t i = 0; i < dataset.streams.size(); ++i) {
          engine.ApplyChange(static_cast<int>(i),
                             dataset.streams[i].ChangeAt(t));
        }
      }
      for (int i = 0; i < engine.num_streams(); ++i) {
        const std::vector<int> cached = engine.CandidatesForStream(i);
        EXPECT_EQ(cached, engine.RecomputeCandidatesFromScratch(i))
            << JoinKindName(kind) << " t=" << t << " stream=" << i;
        // A second read with no intervening deltas comes from the verdict
        // cache and must be identical.
        EXPECT_EQ(engine.CandidatesForStream(i), cached)
            << JoinKindName(kind) << " t=" << t << " stream=" << i;
        // The caller-buffer overload is the same answer.
        engine.CandidatesForStream(i, &buffer);
        EXPECT_EQ(buffer, cached)
            << JoinKindName(kind) << " t=" << t << " stream=" << i;
      }
      std::vector<std::pair<int, int>> pairs_buffer;
      engine.AllCandidatePairs(&pairs_buffer);
      EXPECT_EQ(pairs_buffer, engine.AllCandidatePairs())
          << JoinKindName(kind) << " t=" << t;
    }
  }
}

// Strategy-level delta feed (no engine): random updates/removals with
// removals of never-inserted vertices, re-updates of tombstoned vertices,
// and empty vectors; every strategy must match a from-scratch replay into a
// fresh strategy of the same kind.
TEST(JoinIncrementalTest, StrategyMatchesFreshReplayUnderChurn) {
  Rng rng(8086);
  constexpr int kNumQueries = 6;
  constexpr int kNumStreams = 2;
  constexpr int kNumDims = 5;
  constexpr int kSteps = 250;

  std::vector<QueryVectors> queries;
  for (int j = 0; j < kNumQueries; ++j) {
    QueryVectors query;
    const int vectors = static_cast<int>(rng.UniformInt(0, 3));
    for (int v = 0; v < vectors; ++v) {
      std::unordered_map<DimId, int32_t> counts;
      const int nnz = static_cast<int>(rng.UniformInt(0, 3));
      for (int k = 0; k < nnz; ++k) {
        counts[static_cast<DimId>(rng.UniformInt(0, kNumDims - 1))] =
            static_cast<int32_t>(rng.UniformInt(1, 4));
      }
      query.vectors.push_back(Npv::FromMap(counts));
    }
    queries.push_back(std::move(query));
  }

  for (const JoinKind kind : AllKinds()) {
    auto incremental = MakeJoinStrategy(kind);
    incremental->SetQueries(queries);
    incremental->SetNumStreams(kNumStreams);

    // Live vertex maps, replayed into a fresh strategy at every step.
    std::vector<std::unordered_map<VertexId, Npv>> live(kNumStreams);

    Rng workload(kind == JoinKind::kNestedLoop          ? 1
                 : kind == JoinKind::kDominatedSetCover ? 2
                                                        : 3);
    for (int step = 0; step < kSteps; ++step) {
      const int stream =
          static_cast<int>(workload.UniformInt(0, kNumStreams - 1));
      const VertexId vertex =
          static_cast<VertexId>(workload.UniformInt(0, 7));
      if (workload.Bernoulli(0.25)) {
        incremental->RemoveStreamVertex(stream, vertex);
        live[stream].erase(vertex);
      } else {
        std::unordered_map<DimId, int32_t> counts;
        const int nnz = static_cast<int>(workload.UniformInt(0, 4));
        for (int k = 0; k < nnz; ++k) {
          counts[static_cast<DimId>(workload.UniformInt(0, kNumDims - 1))] =
              static_cast<int32_t>(workload.UniformInt(1, 5));
        }
        const Npv npv = Npv::FromMap(counts);
        incremental->UpdateStreamVertex(stream, vertex, npv);
        live[stream][vertex] = npv;
      }

      auto fresh = MakeJoinStrategy(kind);
      fresh->SetQueries(queries);
      fresh->SetNumStreams(kNumStreams);
      for (int i = 0; i < kNumStreams; ++i) {
        for (const auto& [v, npv] : live[i]) {
          fresh->UpdateStreamVertex(i, v, npv);
        }
      }
      for (int i = 0; i < kNumStreams; ++i) {
        EXPECT_EQ(incremental->CandidatesForStream(i),
                  fresh->CandidatesForStream(i))
            << JoinKindName(kind) << " step " << step << " stream " << i;
      }
    }
  }
}

// End-to-end: engine candidates on an evolving stream are a superset of the
// exact isomorphism answers (no false negatives), and all join strategies
// agree through the engine.
TEST(JoinNoFalseNegativeTest, EngineSupersetOfExactAnswers) {
  SyntheticStreamParams params;
  params.num_pairs = 6;
  params.avg_graph_edges = 10;
  params.num_vertex_labels = 3;
  params.evolution.num_timestamps = 25;
  params.evolution.p_appear = 0.25;
  params.evolution.p_disappear = 0.2;
  params.seed = 77;
  const StreamDataset dataset = MakeSyntheticStreams(params);

  // Queries: small fragments of the stream start graphs, so that matches
  // actually occur.
  Rng rng(5);
  std::vector<Graph> starts;
  for (const GraphStream& stream : dataset.streams) {
    starts.push_back(stream.StartGraph());
  }
  const std::vector<Graph> queries = ExtractQuerySet(starts, 3, 5, rng);
  ASSERT_FALSE(queries.empty());

  std::vector<std::unique_ptr<ContinuousQueryEngine>> engines;
  for (const JoinKind kind : AllKinds()) {
    EngineOptions options;
    options.nnt_depth = 2;
    options.join_kind = kind;
    auto engine = std::make_unique<ContinuousQueryEngine>(options);
    for (const Graph& q : queries) engine->AddQuery(q);
    for (const GraphStream& s : dataset.streams) {
      engine->AddStream(s.StartGraph());
    }
    engine->Start();
    engines.push_back(std::move(engine));
  }

  int64_t exact_pairs = 0;
  for (int t = 0; t < params.evolution.num_timestamps; ++t) {
    if (t > 0) {
      for (size_t i = 0; i < dataset.streams.size(); ++i) {
        const GraphChange& change = dataset.streams[i].ChangeAt(t);
        for (auto& engine : engines) {
          engine->ApplyChange(static_cast<int>(i), change);
        }
      }
    }
    for (size_t i = 0; i < dataset.streams.size(); ++i) {
      const std::vector<int> reference =
          engines[0]->CandidatesForStream(static_cast<int>(i));
      for (size_t e = 1; e < engines.size(); ++e) {
        EXPECT_EQ(engines[e]->CandidatesForStream(static_cast<int>(i)),
                  reference)
            << "t=" << t << " stream=" << i;
      }
      // No false negatives vs exact isomorphism.
      const Graph& data = engines[0]->StreamGraph(static_cast<int>(i));
      for (size_t j = 0; j < queries.size(); ++j) {
        if (IsSubgraphIsomorphic(queries[j], data)) {
          ++exact_pairs;
          EXPECT_TRUE(std::find(reference.begin(), reference.end(),
                                static_cast<int>(j)) != reference.end())
              << "missed true pair at t=" << t << " stream=" << i
              << " query=" << j;
        }
      }
    }
  }
  // The workload must actually exercise true matches.
  EXPECT_GT(exact_pairs, 0);
}

TEST(BuildQueryVectorsTest, OneVectorPerVertexInIdOrder) {
  Graph g;
  g.AddVertex(0);
  g.AddVertex(1);
  ASSERT_TRUE(g.AddEdge(0, 1, 0));
  DimensionTable dims;
  NntSet nnts(2, &dims);
  nnts.Build(g);
  const QueryVectors vectors = BuildQueryVectors(nnts);
  ASSERT_EQ(vectors.vectors.size(), 2u);
  EXPECT_EQ(vectors.vectors[0], nnts.NpvOf(0));
  EXPECT_EQ(vectors.vectors[1], nnts.NpvOf(1));
}

}  // namespace
}  // namespace gsps
