// Delete-then-insert inverse property of incremental NNT maintenance: for
// any live edge e, applying DeleteEdge(e) followed by re-inserting e must
// restore the NntSet exactly — the same roots, the same branch multisets
// tree by tree (which pins down I_nt/I_et through Validate), the same NPVs,
// and the same total node count as before the deletion. Paper Figs. 4-5
// describe the two operations as exact inverses; this is the regression
// net for the subtree pruning/regrowing logic.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "gsps/common/random.h"
#include "gsps/gen/synthetic_generator.h"
#include "gsps/graph/graph.h"
#include "gsps/nnt/dimension.h"
#include "gsps/nnt/nnt_set.h"

namespace gsps {
namespace {

// Everything observable about an NntSet (per tree and in aggregate).
struct NntSnapshot {
  std::vector<VertexId> roots;
  std::map<VertexId, std::map<std::vector<int32_t>, int64_t>> branches;
  std::map<VertexId, Npv> npvs;
  int64_t total_tree_nodes = 0;
};

NntSnapshot Snapshot(const NntSet& nnts) {
  NntSnapshot snap;
  snap.roots = nnts.Roots();
  for (const VertexId root : snap.roots) {
    snap.branches[root] = nnts.BranchesOf(root);
    snap.npvs[root] = nnts.NpvOf(root);
  }
  snap.total_tree_nodes = nnts.TotalTreeNodes();
  return snap;
}

void ExpectSnapshotsEqual(const NntSnapshot& a, const NntSnapshot& b) {
  EXPECT_EQ(a.roots, b.roots);
  EXPECT_EQ(a.branches, b.branches);
  EXPECT_EQ(a.npvs, b.npvs);
  EXPECT_EQ(a.total_tree_nodes, b.total_tree_nodes);
}

// Deletes and re-inserts every edge of `graph` (one at a time, engine
// protocol order) and checks the NntSet returns to its pre-delete state.
void CheckAllEdgesInvertible(Graph graph, int depth) {
  DimensionTable dims;
  NntSet nnts(depth, &dims);
  nnts.Build(graph);
  ASSERT_TRUE(nnts.Validate(graph));

  for (const VertexId u : graph.VertexIds()) {
    // Copy: the adjacency list reference would dangle across mutations.
    const std::vector<HalfEdge> neighbors = graph.Neighbors(u);
    for (const HalfEdge& half : neighbors) {
      const VertexId v = half.to;
      if (v < u) continue;  // Each undirected edge once.
      const EdgeLabel label = half.label;
      const NntSnapshot before = Snapshot(nnts);

      // Engine deletion protocol: trees first, then the graph.
      nnts.DeleteEdge(u, v);
      ASSERT_TRUE(graph.RemoveEdge(u, v));
      ASSERT_TRUE(nnts.Validate(graph)) << "after delete " << u << "-" << v;

      // Engine insertion protocol: graph first, then the trees.
      ASSERT_TRUE(graph.AddEdge(u, v, label));
      nnts.InsertEdge(graph, u, v);
      ASSERT_TRUE(nnts.Validate(graph)) << "after re-insert " << u << "-"
                                        << v;

      ExpectSnapshotsEqual(before, Snapshot(nnts));
      nnts.TakeDirtyRoots();  // Reset dirtiness between probes.
    }
  }
}

TEST(NntInverseTest, HandBuiltTriangleWithTail) {
  Graph g;
  g.AddVertex(1);
  g.AddVertex(2);
  g.AddVertex(1);
  g.AddVertex(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 0));
  ASSERT_TRUE(g.AddEdge(1, 2, 0));
  ASSERT_TRUE(g.AddEdge(0, 2, 1));
  ASSERT_TRUE(g.AddEdge(2, 3, 0));
  for (int depth = 1; depth <= 3; ++depth) {
    CheckAllEdgesInvertible(g, depth);
  }
}

TEST(NntInverseTest, BridgeEdgeDisconnectsAndReconnects) {
  // Deleting the bridge splits the graph in two; re-inserting it must
  // regrow exactly the cross-component paths that were pruned.
  Graph g;
  for (int i = 0; i < 6; ++i) g.AddVertex(i % 2);
  ASSERT_TRUE(g.AddEdge(0, 1, 0));
  ASSERT_TRUE(g.AddEdge(1, 2, 0));
  ASSERT_TRUE(g.AddEdge(0, 2, 0));
  ASSERT_TRUE(g.AddEdge(2, 3, 1));  // The bridge.
  ASSERT_TRUE(g.AddEdge(3, 4, 0));
  ASSERT_TRUE(g.AddEdge(4, 5, 0));
  ASSERT_TRUE(g.AddEdge(3, 5, 0));
  CheckAllEdgesInvertible(g, 3);
}

TEST(NntInverseTest, RandomGraphsAllDepths) {
  Rng rng(271828);
  for (int trial = 0; trial < 6; ++trial) {
    const int num_edges = 4 + static_cast<int>(rng.UniformInt(0, 10));
    const Graph g = RandomConnectedGraph(num_edges, /*num_vertex_labels=*/3,
                                         /*num_edge_labels=*/2, rng);
    const int depth = 1 + trial % 3;
    CheckAllEdgesInvertible(g, depth);
  }
}

TEST(NntInverseTest, DeleteInsertLeavesDirtyRootsConsistent) {
  // The inverse round trip may mark roots dirty (their NPV was touched
  // twice), but every dirty root's NPV must still equal the rebuilt truth.
  Graph g;
  Rng rng(31415);
  const Graph random = RandomConnectedGraph(8, 3, 1, rng);
  g = random;

  DimensionTable dims;
  NntSet nnts(3, &dims);
  nnts.Build(g);
  nnts.TakeDirtyRoots();

  const VertexId u = g.VertexIds().front();
  ASSERT_FALSE(g.Neighbors(u).empty());
  const HalfEdge half = g.Neighbors(u).front();
  nnts.DeleteEdge(u, half.to);
  ASSERT_TRUE(g.RemoveEdge(u, half.to));
  ASSERT_TRUE(g.AddEdge(u, half.to, half.label));
  nnts.InsertEdge(g, u, half.to);

  NntSet fresh(3, &dims);
  fresh.Build(g);
  for (const VertexId root : nnts.TakeDirtyRoots()) {
    EXPECT_EQ(nnts.NpvOf(root), fresh.NpvOf(root)) << "root " << root;
  }
}

}  // namespace
}  // namespace gsps
