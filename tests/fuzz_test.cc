// Tests for the differential-fuzzing subsystem: deterministic generation,
// the replay format, the oracle helper functions, the minimizer (driven by
// synthetic predicates, since shrinking a real failure needs a real bug),
// and short end-to-end RunFuzz runs that must pass every oracle.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "gsps/common/random.h"
#include "gsps/fuzz/fuzz_case.h"
#include "gsps/fuzz/fuzzer.h"
#include "gsps/fuzz/minimizer.h"
#include "gsps/fuzz/oracles.h"
#include "gsps/fuzz/replay.h"
#include "gsps/fuzz/workload_gen.h"

namespace gsps {
namespace {

GenParams SmallParams() {
  GenParams params;
  params.max_queries = 3;
  params.max_streams = 2;
  params.max_timestamps = 5;
  params.max_query_edges = 4;
  params.max_start_edges = 8;
  params.max_batch_ops = 4;
  return params;
}

TEST(WorkloadGenTest, SameSeedSameCase) {
  const GenParams params = SmallParams();
  for (uint64_t seed : {1ULL, 7ULL, 99ULL}) {
    Rng a(seed);
    Rng b(seed);
    const FuzzCase ca = GenerateCase(params, a);
    const FuzzCase cb = GenerateCase(params, b);
    EXPECT_EQ(FormatReplay(ca), FormatReplay(cb)) << "seed " << seed;
    EXPECT_EQ(DescribeCase(ca), DescribeCase(cb));
  }
}

TEST(WorkloadGenTest, DifferentSeedsDiffer) {
  const GenParams params = SmallParams();
  std::set<std::string> replays;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(seed);
    replays.insert(FormatReplay(GenerateCase(params, rng)));
  }
  // Tiny cases can collide, but a dozen seeds must not all agree.
  EXPECT_GT(replays.size(), 6u);
}

TEST(WorkloadGenTest, GeneratedCasesRoundTripAndRespectBounds) {
  const GenParams params = SmallParams();
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    const FuzzCase c = GenerateCase(params, rng);
    EXPECT_GE(static_cast<int>(c.workload.streams.size()), 1);
    EXPECT_LE(static_cast<int>(c.workload.streams.size()),
              params.max_streams);
    EXPECT_LE(static_cast<int>(c.workload.queries.size()),
              params.max_queries);
    EXPECT_GE(c.nnt_depth, 1);
    EXPECT_LE(c.nnt_depth, 3);
    for (const GraphStream& s : c.workload.streams) {
      EXPECT_LE(s.NumTimestamps(), params.max_timestamps);
    }
    const std::string text = FormatReplay(c);
    const std::optional<FuzzCase> parsed = ParseReplay(text);
    ASSERT_TRUE(parsed.has_value()) << "seed " << seed;
    EXPECT_EQ(FormatReplay(*parsed), text);
    EXPECT_EQ(parsed->nnt_depth, c.nnt_depth);
  }
}

TEST(ReplayTest, DepthDirective) {
  // Default depth when the directive is absent.
  std::optional<FuzzCase> c = ParseReplay("q 0\nv 0 1\n");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->nnt_depth, 3);

  c = ParseReplay("depth 2\nq 0\nv 0 1\n");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->nnt_depth, 2);

  IoError error;
  // Out of range, duplicated, after a section, or malformed.
  EXPECT_FALSE(ParseReplay("depth 0\n", &error).has_value());
  EXPECT_EQ(error.line, 1);
  EXPECT_FALSE(ParseReplay("depth 99\n", &error).has_value());
  EXPECT_FALSE(ParseReplay("depth 2\ndepth 3\n", &error).has_value());
  EXPECT_EQ(error.line, 2);
  EXPECT_FALSE(ParseReplay("q 0\nv 0 1\ndepth 2\n", &error).has_value());
  EXPECT_EQ(error.line, 3);
  EXPECT_FALSE(ParseReplay("depth x\n", &error).has_value());
}

TEST(ReplayTest, ChurnDirective) {
  // Round-trip: churn lines appear between depth and the first section, in
  // file order, and survive Format -> Parse -> Format unchanged.
  const std::string text =
      "# gsps_fuzz replay v1\n"
      "depth 2\n"
      "churn 0 add 1\n"
      "churn 3 rm 0\n"
      "churn 0 rm 1\n"
      "q 0\n"
      "v 0 1\n";
  const std::optional<FuzzCase> c = ParseReplay(text);
  ASSERT_TRUE(c.has_value());
  ASSERT_EQ(c->churn.size(), 3u);
  EXPECT_EQ(c->churn[0], (ChurnOp{0, true, 1}));
  EXPECT_EQ(c->churn[1], (ChurnOp{3, false, 0}));
  EXPECT_EQ(c->churn[2], (ChurnOp{0, false, 1}));
  EXPECT_EQ(FormatReplay(*c), text);

  IoError error;
  // Bad verb, negative values, truncated, or after a section.
  EXPECT_FALSE(ParseReplay("churn 0 drop 1\n", &error).has_value());
  EXPECT_EQ(error.line, 1);
  EXPECT_FALSE(ParseReplay("churn -1 add 0\n", &error).has_value());
  EXPECT_FALSE(ParseReplay("churn 0 add -2\n", &error).has_value());
  EXPECT_FALSE(ParseReplay("churn 0 add\n", &error).has_value());
  EXPECT_FALSE(
      ParseReplay("q 0\nv 0 1\nchurn 0 add 0\n", &error).has_value());
  EXPECT_EQ(error.line, 3);
}

TEST(FuzzCaseTest, StartsRegisteredFollowsTheFirstOp) {
  FuzzCase c;
  c.churn.push_back(ChurnOp{2, /*add=*/true, /*query=*/0});
  c.churn.push_back(ChurnOp{1, /*add=*/false, /*query=*/1});
  c.churn.push_back(ChurnOp{0, /*add=*/false, /*query=*/0});
  // List order decides, not timestamp order: query 0's first listed op is
  // an add, so it starts unregistered and enters mid-run.
  EXPECT_FALSE(StartsRegistered(c, 0));
  EXPECT_TRUE(StartsRegistered(c, 1));
  // Untouched queries start registered.
  EXPECT_TRUE(StartsRegistered(c, 2));
}

TEST(FuzzCaseTest, TotalEdgesCountsQueriesStartsAndInsertions) {
  FuzzCase c;
  Graph q;
  q.AddVertex(1);
  q.AddVertex(1);
  ASSERT_TRUE(q.AddEdge(0, 1, 0));
  c.workload.queries.push_back(q);  // 1 edge.

  Graph start;
  start.AddVertex(1);
  start.AddVertex(2);
  start.AddVertex(3);
  ASSERT_TRUE(start.AddEdge(0, 1, 0));
  ASSERT_TRUE(start.AddEdge(1, 2, 0));  // 2 edges.
  GraphStream stream(start);
  GraphChange batch;
  batch.ops.push_back(EdgeOp::Insert(0, 2, 0, 1, 3));  // +1.
  batch.ops.push_back(EdgeOp::Delete(0, 1));           // Deletions free.
  stream.AppendChange(batch);
  c.workload.streams.push_back(stream);

  EXPECT_EQ(TotalEdges(c), 4);
  EXPECT_EQ(Horizon(c), 2);
  EXPECT_EQ(DescribeCase(c), "streams=1 queries=1 ts=2 edges=4");
}

TEST(FuzzCaseTest, RebuildStreamInvertsBatchesOf) {
  Rng rng(5);
  FuzzCase c = GenerateCase(SmallParams(), rng);
  for (const GraphStream& s : c.workload.streams) {
    const GraphStream rebuilt = RebuildStream(s.StartGraph(), BatchesOf(s));
    ASSERT_EQ(rebuilt.NumTimestamps(), s.NumTimestamps());
    for (int t = 0; t < s.NumTimestamps(); ++t) {
      EXPECT_EQ(rebuilt.MaterializeAt(t), s.MaterializeAt(t));
    }
  }
}

TEST(OracleHelpersTest, MissingCandidates) {
  EXPECT_TRUE(MissingCandidates({1, 2, 3}, {1, 3}).empty());
  EXPECT_TRUE(MissingCandidates({}, {}).empty());
  EXPECT_EQ(MissingCandidates({1, 3}, {1, 2, 3}), (std::vector<int>{2}));
  EXPECT_EQ(MissingCandidates({}, {0, 4}), (std::vector<int>{0, 4}));
}

TEST(OracleHelpersTest, DescribeSet) {
  EXPECT_EQ(DescribeSet({}), "{}");
  EXPECT_EQ(DescribeSet({2}), "{2}");
  EXPECT_EQ(DescribeSet({1, 3, 7}), "{1, 3, 7}");
}

TEST(OracleHelpersTest, CheckNoFalseNegatives) {
  EXPECT_FALSE(CheckNoFalseNegatives("NL", 2, 0, {0, 1, 2}, {1}).has_value());
  // A superset (false positives) is fine; a miss is not.
  const std::optional<std::string> miss =
      CheckNoFalseNegatives("Skyline", 4, 1, {0}, {0, 2});
  ASSERT_TRUE(miss.has_value());
  EXPECT_NE(miss->find("Skyline"), std::string::npos);
  EXPECT_NE(miss->find("t=4"), std::string::npos);
  EXPECT_NE(miss->find("2"), std::string::npos);
}

TEST(OracleHelpersTest, CheckStrategiesAgree) {
  EXPECT_FALSE(
      CheckStrategiesAgree("NL", {1, 2}, "DSC", {1, 2}, 0, 0).has_value());
  const std::optional<std::string> diff =
      CheckStrategiesAgree("NL", {1, 2}, "DSC", {1}, 3, 1);
  ASSERT_TRUE(diff.has_value());
  EXPECT_NE(diff->find("NL"), std::string::npos);
  EXPECT_NE(diff->find("DSC"), std::string::npos);
}

TEST(OracleTest, HandBuiltCasePasses) {
  // A planted query (path of two labeled vertices) that appears, vanishes,
  // and reappears across the stream; every oracle must hold.
  FuzzCase c;
  c.nnt_depth = 2;
  Graph query;
  query.AddVertex(1);
  query.AddVertex(2);
  ASSERT_TRUE(query.AddEdge(0, 1, 0));
  c.workload.queries.push_back(query);

  Graph start;
  start.AddVertex(1);
  start.AddVertex(2);
  start.AddVertex(2);
  ASSERT_TRUE(start.AddEdge(0, 1, 0));
  GraphStream stream(start);
  GraphChange del;
  del.ops.push_back(EdgeOp::Delete(0, 1));
  stream.AppendChange(del);
  GraphChange ins;
  ins.ops.push_back(EdgeOp::Insert(0, 2, 0, 1, 2));
  stream.AppendChange(ins);
  c.workload.streams.push_back(stream);

  EXPECT_EQ(RunOracles(c), std::nullopt);
}

TEST(OracleTest, HandBuiltChurnSchedulePasses) {
  // Same planted pattern, now with a lifecycle: the query is removed just
  // before its match vanishes and re-added just before it reappears, plus
  // skip-safe no-ops (double add, remove of an out-of-range id). Oracle 6
  // rebuilds a fresh engine at every timestamp and must agree throughout.
  FuzzCase c;
  c.nnt_depth = 2;
  Graph query;
  query.AddVertex(1);
  query.AddVertex(2);
  ASSERT_TRUE(query.AddEdge(0, 1, 0));
  c.workload.queries.push_back(query);

  Graph start;
  start.AddVertex(1);
  start.AddVertex(2);
  start.AddVertex(2);
  ASSERT_TRUE(start.AddEdge(0, 1, 0));
  GraphStream stream(start);
  GraphChange del;
  del.ops.push_back(EdgeOp::Delete(0, 1));
  stream.AppendChange(del);
  GraphChange ins;
  ins.ops.push_back(EdgeOp::Insert(0, 2, 0, 1, 2));
  stream.AppendChange(ins);
  c.workload.streams.push_back(stream);

  c.churn.push_back(ChurnOp{1, /*add=*/false, /*query=*/0});
  c.churn.push_back(ChurnOp{2, /*add=*/true, /*query=*/0});
  c.churn.push_back(ChurnOp{2, /*add=*/true, /*query=*/0});   // Double add.
  c.churn.push_back(ChurnOp{0, /*add=*/false, /*query=*/7});  // Out of range.
  EXPECT_EQ(DescribeCase(c), "streams=1 queries=1 ts=3 edges=3 churn=4");
  EXPECT_EQ(RunOracles(c), std::nullopt);
}

TEST(OracleTest, EmptyWorkloadEdgeCases) {
  // No queries at all: every candidate set is empty, oracles still run.
  FuzzCase no_queries;
  no_queries.workload.streams.push_back(GraphStream(Graph{}));
  EXPECT_EQ(RunOracles(no_queries), std::nullopt);

  // An empty-graph query against an empty stream.
  FuzzCase empty_query;
  empty_query.workload.queries.push_back(Graph{});
  empty_query.workload.streams.push_back(GraphStream(Graph{}));
  EXPECT_EQ(RunOracles(empty_query), std::nullopt);
}

TEST(MinimizerTest, ShrinksToThePredicateCore) {
  // Generate a sizeable case, then chase a synthetic "failure": the case
  // contains at least one insertion op with edge label 0. The minimizer
  // must shrink everything else away.
  Rng rng(17);
  GenParams params = SmallParams();
  params.max_streams = 3;
  params.max_timestamps = 7;
  FuzzCase big = GenerateCase(params, rng);
  const CasePredicate has_insert = [](const FuzzCase& c) {
    for (const GraphStream& s : c.workload.streams) {
      for (const GraphChange& batch : BatchesOf(s)) {
        for (const EdgeOp& op : batch.ops) {
          if (op.kind == EdgeOp::Kind::kInsert) return true;
        }
      }
    }
    return false;
  };
  if (!has_insert(big)) {
    GraphChange batch;
    batch.ops.push_back(EdgeOp::Insert(0, 1, 0, 1, 1));
    GraphStream s = big.workload.streams.front();
    s.AppendChange(batch);
    big.workload.streams.front() = s;
  }
  const MinimizeResult result = Minimize(big, has_insert);
  EXPECT_TRUE(has_insert(result.best));
  EXPECT_EQ(result.best.workload.streams.size(), 1u);
  EXPECT_TRUE(result.best.workload.queries.empty());
  // One insertion op in one batch, empty start graph: a single edge.
  EXPECT_LE(TotalEdges(result.best), 1);
  EXPECT_GT(result.attempts, 0);
  EXPECT_LE(result.attempts, 4000);
}

TEST(MinimizerTest, ShrinksQueryEdges) {
  Rng rng(23);
  const FuzzCase big = GenerateCase(SmallParams(), rng);
  // Synthetic failure: total query edge count >= 1.
  const CasePredicate has_query_edge = [](const FuzzCase& c) {
    for (const Graph& q : c.workload.queries) {
      if (q.NumEdges() > 0) return true;
    }
    return false;
  };
  FuzzCase seeded = big;
  bool any = has_query_edge(seeded);
  if (!any) {
    Graph q;
    q.AddVertex(1);
    q.AddVertex(1);
    ASSERT_TRUE(q.AddEdge(0, 1, 0));
    seeded.workload.queries.push_back(q);
  }
  const MinimizeResult result = Minimize(seeded, has_query_edge);
  EXPECT_TRUE(has_query_edge(result.best));
  EXPECT_TRUE(result.best.workload.streams.empty());
  ASSERT_EQ(result.best.workload.queries.size(), 1u);
  EXPECT_EQ(result.best.workload.queries.front().NumEdges(), 1);
  EXPECT_EQ(TotalEdges(result.best), 1);
}

TEST(MinimizerTest, DropsIrrelevantChurnSchedules) {
  // Synthetic failure that ignores churn entirely: the whole schedule must
  // be cleared (a churn-free replay is the simpler repro).
  Rng rng(23);
  FuzzCase seeded = GenerateCase(SmallParams(), rng);
  Graph q;
  q.AddVertex(1);
  q.AddVertex(1);
  ASSERT_TRUE(q.AddEdge(0, 1, 0));
  seeded.workload.queries.push_back(q);
  seeded.churn.push_back(ChurnOp{0, true, 0});
  seeded.churn.push_back(ChurnOp{1, false, 1});
  const CasePredicate has_query_edge = [](const FuzzCase& c) {
    for (const Graph& g : c.workload.queries) {
      if (g.NumEdges() > 0) return true;
    }
    return false;
  };
  const MinimizeResult result = Minimize(seeded, has_query_edge);
  EXPECT_TRUE(has_query_edge(result.best));
  EXPECT_TRUE(result.best.churn.empty());
}

TEST(MinimizerTest, RenumbersChurnOpsWhenQueriesDrop) {
  // Synthetic failure: some add op names an in-range query. Shrinking must
  // keep the op pointing at a live query while the others fall away.
  FuzzCase seeded;
  seeded.workload.streams.push_back(GraphStream(Graph{}));
  for (int q = 0; q < 3; ++q) {
    Graph g;
    g.AddVertex(static_cast<VertexLabel>(q));
    seeded.workload.queries.push_back(g);
  }
  seeded.churn.push_back(ChurnOp{0, false, 0});
  seeded.churn.push_back(ChurnOp{1, true, 2});
  seeded.churn.push_back(ChurnOp{2, false, 1});
  const CasePredicate has_in_range_add = [](const FuzzCase& c) {
    for (const ChurnOp& op : c.churn) {
      if (op.add &&
          op.query < static_cast<int>(c.workload.queries.size())) {
        return true;
      }
    }
    return false;
  };
  const MinimizeResult result = Minimize(seeded, has_in_range_add);
  EXPECT_TRUE(has_in_range_add(result.best));
  ASSERT_EQ(result.best.churn.size(), 1u);
  EXPECT_EQ(result.best.churn[0], (ChurnOp{1, true, 0}));
  EXPECT_EQ(result.best.workload.queries.size(), 1u);
}

TEST(MinimizerTest, RespectsAttemptBudget) {
  Rng rng(29);
  const FuzzCase big = GenerateCase(SmallParams(), rng);
  int calls = 0;
  const CasePredicate counting = [&calls](const FuzzCase&) {
    ++calls;
    return true;
  };
  MinimizeOptions options;
  options.max_attempts = 10;
  const MinimizeResult result = Minimize(big, counting, options);
  EXPECT_LE(result.attempts, 10);
  // The entry check is not billed against the budget.
  EXPECT_LE(calls, 11);
}

TEST(FuzzerTest, CaseSeedSpreads) {
  std::set<uint64_t> seeds;
  for (int i = 0; i < 64; ++i) {
    seeds.insert(CaseSeed(1, i));
    seeds.insert(CaseSeed(2, i));
  }
  EXPECT_EQ(seeds.size(), 128u);
}

TEST(FuzzerTest, ShortRunPassesAndLogsDeterministically) {
  FuzzOptions options;
  options.seed = 1;
  options.iterations = 4;
  options.gen = SmallParams();

  std::vector<std::string> log_a;
  const FuzzOutcome a = RunFuzz(
      options, [&log_a](const std::string& line) { log_a.push_back(line); });
  EXPECT_TRUE(a.ok) << a.failure;

  std::vector<std::string> log_b;
  const FuzzOutcome b = RunFuzz(
      options, [&log_b](const std::string& line) { log_b.push_back(line); });
  EXPECT_TRUE(b.ok);
  EXPECT_EQ(log_a, log_b);
  ASSERT_FALSE(log_a.empty());
  EXPECT_EQ(log_a.back(), "all 4 iterations passed");
}

TEST(FuzzerTest, NullLogIsAccepted) {
  FuzzOptions options;
  options.seed = 3;
  options.iterations = 2;
  options.gen = SmallParams();
  const FuzzOutcome outcome = RunFuzz(options, nullptr);
  EXPECT_TRUE(outcome.ok) << outcome.failure;
}

}  // namespace
}  // namespace gsps
