// Test-only JSON validity checker and substring counter, shared by the
// observability tests (obs_test.cc, flight_recorder_test.cc).
//
// Just enough of RFC 8259 to prove emitted metrics/trace/dump JSON is
// syntactically well-formed (Perfetto and Prometheus scrapers parse it
// with real parsers; a substring check alone would not catch a stray
// comma).

#ifndef GSPS_TESTS_TEST_JSON_H_
#define GSPS_TESTS_TEST_JSON_H_

#include <cctype>
#include <cstddef>
#include <string>

namespace gsps::testing {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Valid() {
    pos_ = 0;
    if (!ParseValue()) return false;
    SkipWhitespace();
    return pos_ == text_.size();
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseLiteral(const char* literal) {
    const size_t n = std::string(literal).size();
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  bool ParseString() {
    if (!Consume('"')) return false;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;  // Skip the escaped character.
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // Closing quote.
    return true;
  }

  bool ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool ParseObject() {
    if (!Consume('{')) return false;
    if (Consume('}')) return true;
    do {
      SkipWhitespace();
      if (!ParseString()) return false;
      if (!Consume(':')) return false;
      if (!ParseValue()) return false;
    } while (Consume(','));
    return Consume('}');
  }

  bool ParseArray() {
    if (!Consume('[')) return false;
    if (Consume(']')) return true;
    do {
      if (!ParseValue()) return false;
    } while (Consume(','));
    return Consume(']');
  }

  bool ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
        return ParseLiteral("true");
      case 'f':
        return ParseLiteral("false");
      case 'n':
        return ParseLiteral("null");
      default:
        return ParseNumber();
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

inline int CountOccurrences(const std::string& haystack,
                            const std::string& needle) {
  int count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

}  // namespace gsps::testing

#endif  // GSPS_TESTS_TEST_JSON_H_
