// Fidelity tests that replay the paper's running examples.
//
//   * Figure 7/9: the projected vectors of query Q {(1,1),(0,3),(2,3),(3,1)}
//     and stream G {(2,2),(1,3),(2,3),(3,2)} over dimensions Dim1=(1,A,C)
//     and Dim2=(1,A,B); the dominance relations the paper derives
//     (NPV(b) dominates NPV(1) and NPV(2) in the full space) and the
//     resulting candidate decision for all three strategies.
//   * Figure 10: the monochromatic skyline of the query vectors is
//     {NPV(3), NPV(4)} (NPV(3) dominates NPV(1) and NPV(2)); NPV(3) is
//     dominated only by NPV(c), NPV(4) only by NPV(d).
//   * Lemma 3.2's setting: incremental updates touch only trees within
//     depth of the changed edge.

#include <gtest/gtest.h>

#include "gsps/join/dominance.h"
#include "gsps/join/join_strategy.h"
#include "gsps/nnt/dimension.h"
#include "gsps/nnt/nnt_set.h"
#include "gsps/nnt/npv.h"

namespace gsps {
namespace {

constexpr DimId kDim1 = 0;  // (1, A, C)
constexpr DimId kDim2 = 1;  // (1, A, B)

Npv Vec(int32_t dim1, int32_t dim2) {
  std::unordered_map<DimId, int32_t> counts;
  if (dim1 > 0) counts[kDim1] = dim1;
  if (dim2 > 0) counts[kDim2] = dim2;
  return Npv::FromMap(counts);
}

// The paper's Figure 7(b) vectors.
struct PaperVectors {
  // Query Q: nodes 1..4.
  Npv q1 = Vec(1, 1);
  Npv q2 = Vec(0, 3);
  Npv q3 = Vec(2, 3);
  Npv q4 = Vec(3, 1);
  // Stream G: nodes a..d.
  Npv a = Vec(2, 2);
  Npv b = Vec(1, 3);
  Npv c = Vec(2, 3);
  Npv d = Vec(3, 2);
};

TEST(PaperFigure9Test, DominanceRelationsMatchThePaper) {
  const PaperVectors v;
  // "query vectors NPV(1) and NPV(2) are dominated by NPV(b) at the full
  // space".
  EXPECT_TRUE(v.b.Dominates(v.q1));
  EXPECT_TRUE(v.b.Dominates(v.q2));
  EXPECT_FALSE(v.b.Dominates(v.q3));
  EXPECT_FALSE(v.b.Dominates(v.q4));
  // Figure 10(a): among stream vectors, only NPV(c) dominates NPV(3).
  EXPECT_TRUE(v.c.Dominates(v.q3));
  EXPECT_FALSE(v.a.Dominates(v.q3));
  EXPECT_FALSE(v.d.Dominates(v.q3));
  // And NPV(4) = (3,1) is dominated by NPV(d) = (3,2) only.
  EXPECT_TRUE(v.d.Dominates(v.q4));
  EXPECT_FALSE(v.a.Dominates(v.q4));
  EXPECT_FALSE(v.b.Dominates(v.q4));
  EXPECT_FALSE(v.c.Dominates(v.q4));
}

TEST(PaperFigure9Test, AllStrategiesReportThePairAsCandidate) {
  const PaperVectors v;
  // Every query vector is dominated by some stream vector (q1,q2 <= b;
  // q3 <= c; q4 <= d), so (G, Q) must be reported by every strategy.
  for (const JoinKind kind :
       {JoinKind::kNestedLoop, JoinKind::kDominatedSetCover,
        JoinKind::kSkylineEarlyStop}) {
    auto strategy = MakeJoinStrategy(kind);
    std::vector<QueryVectors> queries;
    queries.push_back(QueryVectors{{v.q1, v.q2, v.q3, v.q4}});
    strategy->SetQueries(std::move(queries));
    strategy->SetNumStreams(1);
    strategy->UpdateStreamVertex(0, 0, v.a);
    strategy->UpdateStreamVertex(0, 1, v.b);
    strategy->UpdateStreamVertex(0, 2, v.c);
    strategy->UpdateStreamVertex(0, 3, v.d);
    EXPECT_EQ(strategy->CandidatesForStream(0), std::vector<int>{0})
        << JoinKindName(kind);
  }
}

TEST(PaperFigure9Test, IncrementalMoveOfBUncoversQueryVectors) {
  // The paper's incremental illustration: node b moves to b' with its Dim1
  // value decreased, and b' stops dominating the query vectors it used to
  // cover. With b as the only stream vertex, the pair must drop out of the
  // candidate set and come back when b moves again.
  const PaperVectors v;
  for (const JoinKind kind :
       {JoinKind::kNestedLoop, JoinKind::kDominatedSetCover,
        JoinKind::kSkylineEarlyStop}) {
    auto strategy = MakeJoinStrategy(kind);
    std::vector<QueryVectors> queries;
    queries.push_back(QueryVectors{{v.q1, v.q2}});
    strategy->SetQueries(std::move(queries));
    strategy->SetNumStreams(1);
    strategy->UpdateStreamVertex(0, 1, v.b);  // b covers both q1 and q2.
    ASSERT_EQ(strategy->CandidatesForStream(0), std::vector<int>{0});
    // b -> b' = (0, 3): its Dim1 position counter drops below q1's value,
    // so the dominant counter for q1 falls short of q1's dimension count.
    strategy->UpdateStreamVertex(0, 1, Vec(0, 3));
    EXPECT_TRUE(strategy->CandidatesForStream(0).empty())
        << JoinKindName(kind);
    // Moving b back restores the candidate.
    strategy->UpdateStreamVertex(0, 1, v.b);
    EXPECT_EQ(strategy->CandidatesForStream(0), std::vector<int>{0})
        << JoinKindName(kind);
  }
}

TEST(PaperFigure3Test, NntOfExampleVertexHasDocumentedShape) {
  // Figure 3's graph: six vertices labeled A,B,A,C,B,C; NNTs at l = 2.
  // (Vertex ids are 0-based here; the paper numbers them 1..6.)
  Graph g;
  const VertexLabel kA = 0, kB = 1, kC = 2;
  g.AddVertex(kA);  // 1
  g.AddVertex(kB);  // 2
  g.AddVertex(kA);  // 3
  g.AddVertex(kC);  // 4
  g.AddVertex(kB);  // 5
  g.AddVertex(kC);  // 6
  ASSERT_TRUE(g.AddEdge(0, 1, 0));
  ASSERT_TRUE(g.AddEdge(1, 2, 0));
  ASSERT_TRUE(g.AddEdge(1, 3, 0));
  ASSERT_TRUE(g.AddEdge(2, 4, 0));
  ASSERT_TRUE(g.AddEdge(3, 5, 0));

  DimensionTable dims;
  NntSet nnts(2, &dims);
  nnts.Build(g);
  ASSERT_TRUE(nnts.Validate(g));

  // T1 (root vertex 0, label A): branches A-B, A-B-A, A-B-C.
  const auto t1 = nnts.BranchesOf(0);
  EXPECT_EQ(t1.size(), 3u);
  EXPECT_EQ(t1.at({kA, 0, kB}), 1);
  EXPECT_EQ(t1.at({kA, 0, kB, 0, kA}), 1);
  EXPECT_EQ(t1.at({kA, 0, kB, 0, kC}), 1);

  // T2 (root vertex 1, label B): depth-1 children A, A, C and their
  // depth-2 continuations B (via vertex 2) and C (via vertex 3).
  const auto t2 = nnts.BranchesOf(1);
  EXPECT_EQ(t2.at({kB, 0, kA}), 2);
  EXPECT_EQ(t2.at({kB, 0, kC}), 1);
  EXPECT_EQ(t2.at({kB, 0, kA, 0, kB}), 1);
  EXPECT_EQ(t2.at({kB, 0, kC, 0, kC}), 1);

  // Deleting edge (2,4) (paper's (1,3)-flavored example) removes exactly
  // the subtrees that used it.
  nnts.DeleteEdge(1, 3);
  ASSERT_TRUE(g.RemoveEdge(1, 3));
  ASSERT_TRUE(nnts.Validate(g));
  const auto t2_after = nnts.BranchesOf(1);
  EXPECT_EQ(t2_after.count({kB, 0, kC}), 0u);
  EXPECT_EQ(t2_after.at({kB, 0, kA}), 2);
}

}  // namespace
}  // namespace gsps
