// Heap-allocation regression test for the NNT hot path: once capacities
// reach their high-water marks, a steady-state ApplyChange cycle (delete +
// reinsert + dirty flush through the default DominatedSetCover engine) must
// perform zero heap allocations.
//
// This binary links gsps_alloc_hook, which replaces the global operator
// new/delete with counting versions (see common/alloc_hook.h). The strict
// zero assertion only holds in Release builds without sanitizers: Debug
// assertions and sanitizer runtimes allocate on their own, so there the
// test still runs the loop (exercising the code path) but only reports.

#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "gsps/common/alloc_hook.h"
#include "gsps/common/random.h"
#include "gsps/engine/candidate_tracker.h"
#include "gsps/engine/continuous_query_engine.h"
#include "gsps/gen/synthetic_generator.h"
#include "gsps/graph/graph.h"
#include "gsps/graph/graph_change.h"
#include "gsps/join/join_strategy.h"
#include "gsps/nnt/dimension.h"
#include "gsps/nnt/nnt_set.h"

namespace gsps {
namespace {

// Strict zero only where the build leaves the allocator traffic to us.
#if defined(NDEBUG) && !defined(__SANITIZE_ADDRESS__) && \
    !defined(__SANITIZE_THREAD__) && !defined(GSPS_SANITIZE_ENABLED)
constexpr bool kStrict = true;
#else
constexpr bool kStrict = false;
#endif

struct EdgeRec {
  VertexId u, v;
  EdgeLabel label;
};

std::vector<EdgeRec> EdgeList(const Graph& graph) {
  std::vector<EdgeRec> edges;
  for (const VertexId u : graph.VertexIds()) {
    for (const HalfEdge& half : graph.Neighbors(u)) {
      if (u < half.to) edges.push_back({u, half.to, half.label});
    }
  }
  return edges;
}

TEST(NntAllocTest, SteadyStateNntChurnAllocatesNothing) {
  Rng rng(11);
  Graph graph = RandomConnectedGraph(120, 4, 1, rng);
  const std::vector<EdgeRec> edges = EdgeList(graph);
  DimensionTable dims;
  NntSet nnts(3, &dims);
  nnts.Build(graph);

  std::vector<VertexId> dirty;
  auto toggle = [&](const EdgeRec& e) {
    nnts.DeleteEdge(e.u, e.v);
    graph.RemoveEdge(e.u, e.v);
    graph.AddEdge(e.u, e.v, e.label);
    nnts.InsertEdge(graph, e.u, e.v);
    nnts.TakeDirtyRoots(&dirty);
    for (const VertexId root : dirty) {
      if (nnts.TreeOf(root) != nullptr) nnts.NpvOf(root);
    }
  };

  // Warm up to the capacity high-water mark, then measure one full cycle
  // over every edge.
  for (int round = 0; round < 2; ++round) {
    for (const EdgeRec& e : edges) toggle(e);
  }
  const AllocMeter meter;
  for (const EdgeRec& e : edges) toggle(e);
  if (kStrict) {
    EXPECT_EQ(meter.allocs(), 0) << "NNT steady-state churn allocated";
    EXPECT_EQ(meter.frees(), 0);
  } else {
    std::fprintf(stderr,
                 "[ INFO     ] non-strict build: %lld allocs / %lld frees\n",
                 static_cast<long long>(meter.allocs()),
                 static_cast<long long>(meter.frees()));
  }
}

TEST(NntAllocTest, SteadyStateEngineApplyChangeAllocatesNothing) {
  Rng rng(23);
  Graph start = RandomConnectedGraph(80, 4, 1, rng);
  const std::vector<EdgeRec> edges = EdgeList(start);

  EngineOptions options;  // Default join: DominatedSetCover.
  ContinuousQueryEngine engine(options);
  Rng qrng(31);
  engine.AddQuery(RandomConnectedGraph(5, 4, 1, qrng));
  engine.AddQuery(RandomConnectedGraph(7, 4, 1, qrng));
  const int stream = engine.AddStream(std::move(start));
  engine.Start();

  // One ApplyChange toggles an edge off and back on (deletion sequenced
  // before insertion, exactly the engine protocol). Batches are prebuilt so
  // the meter sees only the engine's own work.
  std::vector<GraphChange> changes;
  for (const EdgeRec& e : edges) {
    GraphChange change;
    change.ops.push_back(EdgeOp::Delete(e.u, e.v));
    change.ops.push_back(
        EdgeOp::Insert(e.u, e.v, e.label,
                       engine.StreamGraph(stream).GetVertexLabel(e.u),
                       engine.StreamGraph(stream).GetVertexLabel(e.v)));
    changes.push_back(std::move(change));
  }

  for (int round = 0; round < 2; ++round) {
    for (const GraphChange& change : changes) engine.ApplyChange(stream, change);
  }
  const AllocMeter meter;
  for (const GraphChange& change : changes) engine.ApplyChange(stream, change);
  if (kStrict) {
    EXPECT_EQ(meter.allocs(), 0) << "engine steady-state churn allocated";
    EXPECT_EQ(meter.frees(), 0);
  } else {
    std::fprintf(stderr,
                 "[ INFO     ] non-strict build: %lld allocs / %lld frees\n",
                 static_cast<long long>(meter.allocs()),
                 static_cast<long long>(meter.frees()));
  }
}

// Steady-state delta + candidate refresh through every join strategy: once
// the per-stream join state reaches its high-water marks, ApplyChange plus a
// caller-buffer CandidatesForStream must not touch the heap.
TEST(JoinAllocTest, SteadyStateJoinRefreshAllocatesNothing) {
  for (const JoinKind kind :
       {JoinKind::kNestedLoop, JoinKind::kDominatedSetCover,
        JoinKind::kSkylineEarlyStop}) {
    SCOPED_TRACE(JoinKindName(kind));
    Rng rng(41);
    Graph start = RandomConnectedGraph(60, 4, 1, rng);
    const std::vector<EdgeRec> edges = EdgeList(start);

    EngineOptions options;
    options.join_kind = kind;
    ContinuousQueryEngine engine(options);
    Rng qrng(43);
    engine.AddQuery(RandomConnectedGraph(5, 4, 1, qrng));
    engine.AddQuery(RandomConnectedGraph(7, 4, 1, qrng));
    engine.AddQuery(RandomConnectedGraph(4, 4, 1, qrng));
    const int stream = engine.AddStream(std::move(start));
    engine.Start();

    std::vector<GraphChange> changes;
    for (const EdgeRec& e : edges) {
      GraphChange change;
      change.ops.push_back(EdgeOp::Delete(e.u, e.v));
      change.ops.push_back(
          EdgeOp::Insert(e.u, e.v, e.label,
                         engine.StreamGraph(stream).GetVertexLabel(e.u),
                         engine.StreamGraph(stream).GetVertexLabel(e.v)));
      changes.push_back(std::move(change));
    }

    std::vector<int> candidates;
    auto cycle = [&](const GraphChange& change) {
      engine.ApplyChange(stream, change);
      engine.CandidatesForStream(stream, &candidates);
    };
    for (int round = 0; round < 2; ++round) {
      for (const GraphChange& change : changes) cycle(change);
    }
    const AllocMeter meter;
    for (const GraphChange& change : changes) cycle(change);
    if (kStrict) {
      EXPECT_EQ(meter.allocs(), 0)
          << JoinKindName(kind) << " steady-state join refresh allocated";
      EXPECT_EQ(meter.frees(), 0);
    } else {
      std::fprintf(stderr,
                   "[ INFO     ] non-strict build (%.*s): %lld allocs / %lld "
                   "frees\n",
                   static_cast<int>(JoinKindName(kind).size()),
                   JoinKindName(kind).data(),
                   static_cast<long long>(meter.allocs()),
                   static_cast<long long>(meter.frees()));
    }
  }
}

// The swap-based CandidateTracker::Observe overload: the monitoring loop
// (refill buffer, observe, alert on transitions) must be allocation-free
// once both buffers are at capacity.
TEST(JoinAllocTest, SwapObserveAllocatesNothing) {
  CandidateTracker tracker(1);
  CandidateTransitions transitions;
  std::vector<int> current;

  auto observe = [&](int phase) {
    current.clear();
    // Alternate between two overlapping candidate sets so both appeared and
    // disappeared stay exercised.
    if (phase == 0) {
      current.assign({0, 2, 4, 6});
    } else {
      current.assign({0, 3, 4, 7});
    }
    tracker.Observe(0, &current, &transitions);
  };
  for (int round = 0; round < 4; ++round) observe(round % 2);
  const AllocMeter meter;
  for (int round = 0; round < 64; ++round) observe(round % 2);
  if (kStrict) {
    EXPECT_EQ(meter.allocs(), 0) << "swap-based Observe allocated";
    EXPECT_EQ(meter.frees(), 0);
  } else {
    std::fprintf(stderr,
                 "[ INFO     ] non-strict build: %lld allocs / %lld frees\n",
                 static_cast<long long>(meter.allocs()),
                 static_cast<long long>(meter.frees()));
  }
}

}  // namespace
}  // namespace gsps
