// Tests for the engine's companion utilities: candidate-transition tracking
// and the static NPV index, plus the dynamic-query equivalence property.

#include <gtest/gtest.h>

#include "gsps/common/random.h"
#include "gsps/engine/candidate_tracker.h"
#include "gsps/engine/continuous_query_engine.h"
#include "gsps/engine/static_npv_index.h"
#include "gsps/gen/aids_like.h"
#include "gsps/gen/query_extractor.h"
#include "gsps/gen/stream_generator.h"
#include "gsps/iso/subgraph_isomorphism.h"

namespace gsps {
namespace {

TEST(CandidateTrackerTest, FirstObservationIsAllAppeared) {
  CandidateTracker tracker(2);
  const CandidateTransitions t = tracker.Observe(0, {1, 3, 5});
  EXPECT_EQ(t.appeared, (std::vector<int>{1, 3, 5}));
  EXPECT_TRUE(t.disappeared.empty());
  EXPECT_EQ(tracker.LastObserved(0), (std::vector<int>{1, 3, 5}));
  EXPECT_TRUE(tracker.LastObserved(1).empty());
}

TEST(CandidateTrackerTest, DiffsAreExact) {
  CandidateTracker tracker(1);
  tracker.Observe(0, {1, 2, 4, 7});
  const CandidateTransitions t = tracker.Observe(0, {2, 3, 7, 9});
  EXPECT_EQ(t.appeared, (std::vector<int>{3, 9}));
  EXPECT_EQ(t.disappeared, (std::vector<int>{1, 4}));
}

TEST(CandidateTrackerTest, NoChangeIsEmpty) {
  CandidateTracker tracker(1);
  tracker.Observe(0, {2, 5});
  const CandidateTransitions t = tracker.Observe(0, {2, 5});
  EXPECT_TRUE(t.empty());
}

TEST(CandidateTrackerTest, StreamsAreIndependent) {
  CandidateTracker tracker(2);
  tracker.Observe(0, {1});
  const CandidateTransitions t = tracker.Observe(1, {1});
  EXPECT_EQ(t.appeared, std::vector<int>{1});
}

TEST(CandidateTrackerTest, TracksEngineTransitions) {
  // Drive an engine and assert transitions reconstruct the candidate sets.
  SyntheticStreamParams params;
  params.num_pairs = 3;
  params.avg_graph_edges = 10;
  params.evolution.num_timestamps = 15;
  params.seed = 42;
  const StreamDataset dataset = MakeSyntheticStreams(params);
  Rng rng(6);
  std::vector<Graph> starts;
  for (const GraphStream& s : dataset.streams) starts.push_back(s.StartGraph());
  const std::vector<Graph> queries = ExtractQuerySet(starts, 3, 4, rng);
  ASSERT_FALSE(queries.empty());

  ContinuousQueryEngine engine(EngineOptions{});
  for (const Graph& q : queries) engine.AddQuery(q);
  for (const GraphStream& s : dataset.streams) engine.AddStream(s.StartGraph());
  engine.Start();

  CandidateTracker tracker(engine.num_streams());
  int64_t total_events = 0;
  for (int t = 0; t < params.evolution.num_timestamps; ++t) {
    if (t > 0) {
      for (size_t i = 0; i < dataset.streams.size(); ++i) {
        engine.ApplyChange(static_cast<int>(i), dataset.streams[i].ChangeAt(t));
      }
    }
    for (int i = 0; i < engine.num_streams(); ++i) {
      const std::vector<int> current = engine.CandidatesForStream(i);
      const CandidateTransitions events = tracker.Observe(i, current);
      total_events += static_cast<int64_t>(events.appeared.size() +
                                           events.disappeared.size());
      EXPECT_EQ(tracker.LastObserved(i), current);
    }
  }
  // The workload must actually produce transitions to be meaningful.
  EXPECT_GT(total_events, 0);
}

TEST(StaticNpvIndexTest, NoFalseNegativesAndVerifiedSubset) {
  AidsLikeParams params;
  params.num_graphs = 60;
  params.seed = 17;
  const std::vector<Graph> database = MakeAidsLikeDataset(params);
  Rng rng(18);
  const std::vector<Graph> queries = ExtractQuerySet(database, 5, 10, rng);
  ASSERT_FALSE(queries.empty());

  const StaticNpvIndex index(database, 3);
  EXPECT_EQ(index.num_graphs(), 60);
  for (const Graph& query : queries) {
    const std::vector<int> candidates = index.CandidateGraphsFor(query);
    const std::vector<int> matches = index.MatchingGraphsFor(query);
    // matches == exact answers, and candidates is a superset.
    for (size_t i = 0; i < database.size(); ++i) {
      const bool exact = IsSubgraphIsomorphic(query, database[i]);
      const bool listed = std::find(matches.begin(), matches.end(),
                                    static_cast<int>(i)) != matches.end();
      EXPECT_EQ(exact, listed);
      if (exact) {
        EXPECT_TRUE(std::find(candidates.begin(), candidates.end(),
                              static_cast<int>(i)) != candidates.end());
      }
    }
  }
}

TEST(StaticNpvIndexTest, EmptyQueryMatchesEverything) {
  std::vector<Graph> database(3);
  for (Graph& g : database) g.AddVertex(0);
  const StaticNpvIndex index(database, 2);
  EXPECT_EQ(index.CandidateGraphsFor(Graph()), (std::vector<int>{0, 1, 2}));
}

TEST(DynamicQueryEquivalenceTest, MatchesEngineBuiltWithAllQueriesUpfront) {
  // Adding queries dynamically must yield the same candidates as an engine
  // that knew them from the start, at every subsequent timestamp.
  SyntheticStreamParams params;
  params.num_pairs = 2;
  params.avg_graph_edges = 10;
  params.evolution.num_timestamps = 12;
  params.seed = 91;
  const StreamDataset dataset = MakeSyntheticStreams(params);
  Rng rng(9);
  std::vector<Graph> starts;
  for (const GraphStream& s : dataset.streams) starts.push_back(s.StartGraph());
  const std::vector<Graph> queries = ExtractQuerySet(starts, 3, 4, rng);
  ASSERT_GE(queries.size(), 3u);

  EngineOptions options;
  ContinuousQueryEngine dynamic(options);
  ContinuousQueryEngine upfront(options);
  // `dynamic` starts with the first query only; the rest arrive at t=4.
  dynamic.AddQuery(queries[0]);
  for (const Graph& q : queries) upfront.AddQuery(q);
  for (const GraphStream& s : dataset.streams) {
    dynamic.AddStream(s.StartGraph());
    upfront.AddStream(s.StartGraph());
  }
  dynamic.Start();
  upfront.Start();

  for (int t = 1; t < params.evolution.num_timestamps; ++t) {
    for (size_t i = 0; i < dataset.streams.size(); ++i) {
      dynamic.ApplyChange(static_cast<int>(i), dataset.streams[i].ChangeAt(t));
      upfront.ApplyChange(static_cast<int>(i), dataset.streams[i].ChangeAt(t));
    }
    if (t == 4) {
      for (size_t j = 1; j < queries.size(); ++j) {
        const int id = dynamic.AddQueryDynamic(queries[j]);
        EXPECT_EQ(id, static_cast<int>(j));
      }
    }
    if (t >= 4) {
      for (int i = 0; i < dynamic.num_streams(); ++i) {
        EXPECT_EQ(dynamic.CandidatesForStream(i),
                  upfront.CandidatesForStream(i))
            << "t=" << t << " stream=" << i;
      }
    }
  }
}

}  // namespace
}  // namespace gsps
