// Tests for the single-file workload format (queries + streams).

#include "gsps/graph/workload_io.h"

#include <gtest/gtest.h>

#include <string>

namespace gsps {
namespace {

Graph MakePath(int n, VertexLabel label) {
  Graph g;
  for (int i = 0; i < n; ++i) g.AddVertex(label + i);
  for (int i = 0; i + 1 < n; ++i) EXPECT_TRUE(g.AddEdge(i, i + 1, 0));
  return g;
}

GraphStream MakeStream() {
  GraphStream stream(MakePath(3, 1));
  GraphChange c1;
  c1.ops.push_back(EdgeOp::Insert(0, 3, 1, 1, 7));
  stream.AppendChange(c1);
  GraphChange c2;
  c2.ops.push_back(EdgeOp::Delete(0, 1));
  stream.AppendChange(c2);
  return stream;
}

void ExpectWorkloadsEqual(const Workload& a, const Workload& b) {
  ASSERT_EQ(a.queries.size(), b.queries.size());
  for (size_t i = 0; i < a.queries.size(); ++i) {
    EXPECT_EQ(a.queries[i], b.queries[i]) << "query " << i;
  }
  ASSERT_EQ(a.streams.size(), b.streams.size());
  for (size_t i = 0; i < a.streams.size(); ++i) {
    const GraphStream& sa = a.streams[i];
    const GraphStream& sb = b.streams[i];
    ASSERT_EQ(sa.NumTimestamps(), sb.NumTimestamps()) << "stream " << i;
    EXPECT_EQ(sa.StartGraph(), sb.StartGraph()) << "stream " << i;
    for (int t = 1; t < sa.NumTimestamps(); ++t) {
      EXPECT_EQ(sa.ChangeAt(t), sb.ChangeAt(t))
          << "stream " << i << " t=" << t;
    }
  }
}

TEST(WorkloadIoTest, RoundTrip) {
  Workload w;
  w.queries.push_back(MakePath(2, 1));
  w.queries.push_back(MakePath(4, 2));
  w.streams.push_back(MakeStream());
  w.streams.push_back(GraphStream(Graph{}));  // Empty stream.

  const std::string text = FormatWorkload(w);
  const std::optional<Workload> parsed = ParseWorkload(text);
  ASSERT_TRUE(parsed.has_value());
  ExpectWorkloadsEqual(w, *parsed);
  // Formatting the parse is a fixed point.
  EXPECT_EQ(FormatWorkload(*parsed), text);
}

TEST(WorkloadIoTest, EmptyWorkload) {
  const std::optional<Workload> parsed = ParseWorkload("# nothing here\n\n");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->queries.empty());
  EXPECT_TRUE(parsed->streams.empty());
  EXPECT_EQ(ParseWorkload(FormatWorkload(*parsed)).has_value(), true);
}

TEST(WorkloadIoTest, StreamOnlyAndQueryOnly) {
  Workload streams_only;
  streams_only.streams.push_back(MakeStream());
  std::optional<Workload> parsed =
      ParseWorkload(FormatWorkload(streams_only));
  ASSERT_TRUE(parsed.has_value());
  ExpectWorkloadsEqual(streams_only, *parsed);

  Workload queries_only;
  queries_only.queries.push_back(MakePath(3, 5));
  parsed = ParseWorkload(FormatWorkload(queries_only));
  ASSERT_TRUE(parsed.has_value());
  ExpectWorkloadsEqual(queries_only, *parsed);
}

TEST(WorkloadIoTest, RejectsBadSectionHeaders) {
  IoError error;
  // Record before any section header.
  EXPECT_FALSE(ParseWorkload("v 0 1\n", &error).has_value());
  EXPECT_EQ(error.line, 1);
  // Non-sequential query indices.
  EXPECT_FALSE(ParseWorkload("q 1\nv 0 1\n", &error).has_value());
  EXPECT_EQ(error.line, 1);
  EXPECT_FALSE(ParseWorkload("q 0\nv 0 1\nq 2\nv 0 1\n", &error).has_value());
  EXPECT_EQ(error.line, 3);
  // Query section after a stream section.
  EXPECT_FALSE(
      ParseWorkload("s 0\nv 0 1\nq 0\nv 0 1\n", &error).has_value());
  EXPECT_EQ(error.line, 3);
  // Truncated header.
  EXPECT_FALSE(ParseWorkload("q\nv 0 1\n", &error).has_value());
  EXPECT_EQ(error.line, 1);
}

TEST(WorkloadIoTest, ErrorLinesPointIntoTheFullFile) {
  // The malformed edge is on line 5 of the overall file; the error must not
  // be reported relative to the section body.
  IoError error;
  const std::string text =
      "q 0\n"       // line 1
      "v 0 1\n"     // line 2
      "v 1 1\n"     // line 3
      "e 0 1 0\n"   // line 4
      "e 0 1 0\n";  // line 5 — duplicate edge
  EXPECT_FALSE(ParseWorkload(text, &error).has_value());
  EXPECT_EQ(error.line, 5);
  EXPECT_NE(error.message.find("duplicate edge"), std::string::npos);

  // Same in a stream section following a query section.
  const std::string stream_text =
      "q 0\n"          // line 1
      "v 0 1\n"        // line 2
      "s 0\n"          // line 3
      "v 0 1\n"        // line 4
      "t 1\n"          // line 5
      "+ 0 1 0\n";     // line 6 — truncated insertion
  EXPECT_FALSE(ParseWorkload(stream_text, &error).has_value());
  EXPECT_EQ(error.line, 6);
  EXPECT_NE(error.message.find("truncated insertion"), std::string::npos);
}

}  // namespace
}  // namespace gsps
