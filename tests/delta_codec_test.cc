// Tests for the GSPB binary codec: exact round-trips against the text
// format, size advantage, and rejection of every malformed-blob class the
// decoder guards (fuzz oracle 7 covers generated workloads; these pin the
// wire format and the error paths).

#include "gsps/graph/delta_codec.h"

#include <gtest/gtest.h>

#include <string>

#include "gsps/gen/stream_generator.h"
#include "gsps/graph/graph_io.h"
#include "gsps/graph/stream_io.h"

namespace gsps {
namespace {

GraphStream MakeSampleStream() {
  Graph start;
  start.AddVertex(1);
  start.AddVertex(2);
  start.AddVertex(3);
  EXPECT_TRUE(start.AddEdge(0, 1, 5));
  GraphStream stream(start);
  GraphChange c1;
  c1.ops.push_back(EdgeOp::Insert(1, 2, 0, 2, 3));
  stream.AppendChange(c1);
  stream.AppendChange(GraphChange{});  // Empty batch.
  GraphChange c3;
  c3.ops.push_back(EdgeOp::Delete(0, 1));
  c3.ops.push_back(EdgeOp::Insert(0, 3, 1, 1, 9));
  stream.AppendChange(c3);
  return stream;
}

void ExpectStreamsEqual(const GraphStream& a, const GraphStream& b) {
  ASSERT_EQ(a.NumTimestamps(), b.NumTimestamps());
  for (int t = 0; t < a.NumTimestamps(); ++t) {
    EXPECT_EQ(a.MaterializeAt(t), b.MaterializeAt(t)) << "t=" << t;
    if (t > 0) {
      EXPECT_EQ(a.ChangeAt(t), b.ChangeAt(t)) << "t=" << t;
    }
  }
}

TEST(DeltaCodecTest, GraphRoundTrip) {
  Graph graph;
  graph.AddVertex(7);
  graph.AddVertex(-3);  // Negative labels exercise the zigzag fold.
  graph.AddVertex(0);
  EXPECT_TRUE(graph.AddEdge(0, 1, -12));
  EXPECT_TRUE(graph.AddEdge(1, 2, 4));
  const std::string binary = EncodeGraph(graph);
  const std::optional<Graph> decoded = DecodeGraph(binary);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, graph);
  EXPECT_EQ(EncodeGraph(*decoded), binary);          // Binary fixed point.
  EXPECT_EQ(FormatGraph(*decoded), FormatGraph(graph));  // Text agreement.
}

TEST(DeltaCodecTest, EmptyGraphRoundTrip) {
  const Graph graph;
  const std::optional<Graph> decoded = DecodeGraph(EncodeGraph(graph));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, graph);
}

TEST(DeltaCodecTest, StreamRoundTrip) {
  const GraphStream stream = MakeSampleStream();
  const std::string binary = EncodeStream(stream);
  const std::optional<GraphStream> decoded = DecodeStream(binary);
  ASSERT_TRUE(decoded.has_value());
  ExpectStreamsEqual(stream, *decoded);
  EXPECT_EQ(EncodeStream(*decoded), binary);
  EXPECT_EQ(FormatStream(*decoded), FormatStream(stream));
}

TEST(DeltaCodecTest, StartGraphOnlyStreamRoundTrip) {
  Graph start;
  start.AddVertex(4);
  const GraphStream stream{start};
  const std::optional<GraphStream> decoded = DecodeStream(EncodeStream(stream));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->NumTimestamps(), 1);
  EXPECT_EQ(decoded->StartGraph(), start);
}

TEST(DeltaCodecTest, GeneratedStreamsRoundTripAndBeatTextSize) {
  SyntheticStreamParams params;
  params.num_pairs = 3;
  params.avg_graph_edges = 12;
  params.evolution.num_timestamps = 30;
  params.seed = 11;
  const StreamDataset dataset = MakeSyntheticStreams(params);
  ASSERT_FALSE(dataset.streams.empty());
  for (const GraphStream& stream : dataset.streams) {
    const std::string binary = EncodeStream(stream);
    const std::optional<GraphStream> decoded = DecodeStream(binary);
    ASSERT_TRUE(decoded.has_value());
    ExpectStreamsEqual(stream, *decoded);
    EXPECT_EQ(FormatStream(*decoded), FormatStream(stream));
    EXPECT_EQ(EncodeStream(*decoded), binary);
    // The point of the binary format: materially smaller than the text.
    EXPECT_LT(binary.size(), FormatStream(stream).size() / 2);
  }
}

TEST(DeltaCodecTest, BinaryParsesWhatTextParses) {
  // A stream with the text format's permissive op semantics (deleting a
  // missing edge, duplicate inserts in one batch) must survive the codec
  // with op sequences intact — the codec validates ranges, not semantics.
  const std::optional<GraphStream> parsed = ParseStream(
      "v 0 1\nv 1 2\nt 1\n+ 0 1 0 1 2\n+ 0 1 1 0 0\n- 1 2\n- 0 1\n");
  ASSERT_TRUE(parsed.has_value());
  const std::optional<GraphStream> decoded =
      DecodeStream(EncodeStream(*parsed));
  ASSERT_TRUE(decoded.has_value());
  ExpectStreamsEqual(*parsed, *decoded);
}

// Expects `bytes` to be rejected with a byte-offset error mentioning
// `fragment`.
void ExpectGraphDecodeError(const std::string& bytes,
                            const std::string& fragment) {
  IoError error;
  EXPECT_FALSE(DecodeGraph(bytes, &error).has_value());
  EXPECT_EQ(error.line, 0);
  EXPECT_NE(error.message.find(fragment), std::string::npos)
      << "message \"" << error.message << "\" lacks \"" << fragment << "\"";
  EXPECT_NE(error.message.find("byte "), std::string::npos) << error.message;
}

TEST(DeltaCodecTest, RejectsBadHeader) {
  ExpectGraphDecodeError("", "truncated");
  ExpectGraphDecodeError("GSP", "truncated");
  ExpectGraphDecodeError(std::string("GSPX\x01\x00", 6), "bad GSPB magic");
  ExpectGraphDecodeError(std::string("GSPB\x02\x00", 6), "version");
  // Kind mismatch both ways.
  Graph graph;
  graph.AddVertex(1);
  IoError error;
  EXPECT_FALSE(DecodeStream(EncodeGraph(graph), &error).has_value());
  EXPECT_NE(error.message.find("kind"), std::string::npos);
  const GraphStream stream{graph};
  EXPECT_FALSE(DecodeGraph(EncodeStream(stream), &error).has_value());
  EXPECT_NE(error.message.find("kind"), std::string::npos);
}

TEST(DeltaCodecTest, RejectsTruncatedAndTrailingPayloads) {
  Graph graph;
  graph.AddVertex(1);
  graph.AddVertex(2);
  EXPECT_TRUE(graph.AddEdge(0, 1, 3));
  const std::string binary = EncodeGraph(graph);
  for (size_t len = 0; len < binary.size(); ++len) {
    IoError error;
    EXPECT_FALSE(DecodeGraph(binary.substr(0, len), &error).has_value())
        << "prefix of length " << len << " decoded";
  }
  ExpectGraphDecodeError(binary + std::string(1, '\0'), "trailing bytes");

  const std::string stream_binary = EncodeStream(MakeSampleStream());
  for (size_t len = 0; len < stream_binary.size(); ++len) {
    EXPECT_FALSE(DecodeStream(stream_binary.substr(0, len)).has_value())
        << "prefix of length " << len << " decoded";
  }
  IoError error;
  EXPECT_FALSE(
      DecodeStream(stream_binary + std::string(1, '\0'), &error).has_value());
  EXPECT_NE(error.message.find("trailing bytes"), std::string::npos);
}

TEST(DeltaCodecTest, RejectsStructurallyInvalidGraphs) {
  const std::string header = std::string("GSPB\x01\x00", 6);
  // Two vertices with delta 0 -> duplicate id.
  {
    std::string bytes = header;
    bytes += '\x02';          // num_vertices = 2
    bytes += '\x05';          // id 5
    bytes += '\x02';          // label zigzag(1)
    bytes += '\x00';          // delta 0 -> duplicate
    bytes += '\x02';
    ExpectGraphDecodeError(bytes, "duplicate vertex");
  }
  // Self-loop edge.
  {
    std::string bytes = header;
    bytes += '\x01';          // num_vertices = 1
    bytes += '\x00';          // id 0
    bytes += '\x02';          // label
    bytes += '\x01';          // num_edges = 1
    bytes += '\x00';          // u = 0
    bytes += '\x00';          // v = 0
    bytes += '\x02';          // label
    ExpectGraphDecodeError(bytes, "self-loop");
  }
  // Edge endpoint never declared.
  {
    std::string bytes = header;
    bytes += '\x01';
    bytes += '\x00';
    bytes += '\x02';
    bytes += '\x01';
    bytes += '\x00';          // u = 0
    bytes += '\x07';          // v = 7, undeclared
    bytes += '\x02';
    ExpectGraphDecodeError(bytes, "undeclared");
  }
  // Duplicate edge.
  {
    std::string bytes = header;
    bytes += '\x02';
    bytes += '\x00';          // id 0
    bytes += '\x02';
    bytes += '\x01';          // id 1
    bytes += '\x02';
    bytes += '\x02';          // num_edges = 2
    bytes += '\x00';
    bytes += '\x01';
    bytes += '\x02';
    bytes += '\x00';          // same edge again
    bytes += '\x01';
    bytes += '\x02';
    ExpectGraphDecodeError(bytes, "duplicate edge");
  }
  // Vertex count far beyond the id cap.
  {
    std::string bytes = header;
    // varint 0xFFFFFFFF (4294967295) > kMaxIoVertexId + 1.
    bytes += "\xff\xff\xff\xff\x0f";
    ExpectGraphDecodeError(bytes, "vertex count");
  }
  // Varint longer than 64 bits.
  {
    std::string bytes = header;
    bytes += std::string(10, '\xff');
    ExpectGraphDecodeError(bytes, "64 bits");
  }
}

TEST(DeltaCodecTest, RejectsOutOfRangeChangeOps) {
  Graph start;
  start.AddVertex(1);
  std::string bytes = EncodeStream(GraphStream{start});
  // Rewrite the batch count from 0 to 1 and append one op with a huge u.
  ASSERT_EQ(bytes.back(), '\x00');  // num_batches = 0.
  bytes.back() = '\x01';
  bytes += '\x01';                           // num_ops = 1
  bytes += "\xfe\xff\xff\xff\x1f";           // (u << 1): u out of range
  bytes += '\x00';                           // v = 0
  bytes += '\x02';
  bytes += '\x02';
  bytes += '\x02';
  IoError error;
  EXPECT_FALSE(DecodeStream(bytes, &error).has_value());
  EXPECT_NE(error.message.find("endpoint id out of range"), std::string::npos)
      << error.message;
}

}  // namespace
}  // namespace gsps
