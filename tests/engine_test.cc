// Tests for the continuous query engine: lifecycle, incremental updates,
// verification hook, dynamic queries, and stats accumulation.

#include "gsps/engine/continuous_query_engine.h"

#include <gtest/gtest.h>

#include "gsps/engine/filter_stats.h"
#include "gsps/gen/stream_generator.h"
#include "gsps/graph/graph_change.h"

namespace gsps {
namespace {

Graph TrianglePattern() {
  Graph g;
  g.AddVertex(0);
  g.AddVertex(0);
  g.AddVertex(0);
  EXPECT_TRUE(g.AddEdge(0, 1, 0));
  EXPECT_TRUE(g.AddEdge(1, 2, 0));
  EXPECT_TRUE(g.AddEdge(0, 2, 0));
  return g;
}

Graph EdgePattern(VertexLabel a, VertexLabel b) {
  Graph g;
  g.AddVertex(a);
  g.AddVertex(b);
  EXPECT_TRUE(g.AddEdge(0, 1, 0));
  return g;
}

TEST(EngineTest, ReportsPairAfterPatternAppears) {
  EngineOptions options;
  options.nnt_depth = 3;
  ContinuousQueryEngine engine(options);
  const int q = engine.AddQuery(TrianglePattern());
  Graph start;
  for (int i = 0; i < 3; ++i) start.AddVertex(0);
  ASSERT_TRUE(start.AddEdge(0, 1, 0));
  ASSERT_TRUE(start.AddEdge(1, 2, 0));
  const int s = engine.AddStream(start);
  engine.Start();

  // Open path: no triangle yet; NNT depth 3 prunes the pair.
  EXPECT_TRUE(engine.CandidatesForStream(s).empty());

  // Close the triangle.
  GraphChange change;
  change.ops.push_back(EdgeOp::Insert(0, 2, 0, 0, 0));
  engine.ApplyChange(s, change);
  EXPECT_EQ(engine.CandidatesForStream(s), std::vector<int>{q});
  EXPECT_TRUE(engine.VerifyCandidate(s, q));

  // Break it again.
  GraphChange removal;
  removal.ops.push_back(EdgeOp::Delete(1, 2));
  engine.ApplyChange(s, removal);
  EXPECT_TRUE(engine.CandidatesForStream(s).empty());
  EXPECT_FALSE(engine.VerifyCandidate(s, q));
}

TEST(EngineTest, AllCandidatePairsCoversAllStreams) {
  ContinuousQueryEngine engine(EngineOptions{});
  engine.AddQuery(EdgePattern(1, 2));
  Graph match;
  match.AddVertex(1);
  match.AddVertex(2);
  ASSERT_TRUE(match.AddEdge(0, 1, 0));
  Graph mismatch;
  mismatch.AddVertex(1);
  mismatch.AddVertex(1);
  ASSERT_TRUE(mismatch.AddEdge(0, 1, 0));
  engine.AddStream(match);
  engine.AddStream(mismatch);
  engine.Start();
  const std::vector<std::pair<int, int>> pairs = engine.AllCandidatePairs();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], std::make_pair(0, 0));
}

TEST(EngineTest, DynamicQueryRegistrationAndRemoval) {
  ContinuousQueryEngine engine(EngineOptions{});
  engine.AddQuery(EdgePattern(1, 2));
  Graph start;
  start.AddVertex(1);
  start.AddVertex(2);
  start.AddVertex(3);
  ASSERT_TRUE(start.AddEdge(0, 1, 0));
  ASSERT_TRUE(start.AddEdge(1, 2, 0));
  engine.AddStream(start);
  engine.Start();
  EXPECT_EQ(engine.CandidatesForStream(0), std::vector<int>{0});

  const int added = engine.AddQueryDynamic(EdgePattern(2, 3));
  EXPECT_EQ(added, 1);
  EXPECT_EQ(engine.CandidatesForStream(0), (std::vector<int>{0, 1}));

  engine.RemoveQueryDynamic(0);
  EXPECT_EQ(engine.CandidatesForStream(0), std::vector<int>{1});

  // The engine keeps working incrementally after a rebuild.
  GraphChange change;
  change.ops.push_back(EdgeOp::Delete(1, 2));
  engine.ApplyChange(0, change);
  EXPECT_TRUE(engine.CandidatesForStream(0).empty());
}

TEST(EngineTest, ChangeBatchTouchingUnknownVerticesGrowsStream) {
  ContinuousQueryEngine engine(EngineOptions{});
  engine.AddQuery(EdgePattern(5, 6));
  Graph start;
  start.AddVertex(5);
  engine.AddStream(start);
  engine.Start();
  EXPECT_TRUE(engine.CandidatesForStream(0).empty());
  GraphChange change;
  change.ops.push_back(EdgeOp::Insert(0, 7, 0, 5, 6));
  engine.ApplyChange(0, change);
  EXPECT_EQ(engine.CandidatesForStream(0), std::vector<int>{0});
  EXPECT_TRUE(engine.StreamGraph(0).HasVertex(7));
}

TEST(EngineTest, EngineMatchesColdRestartAcrossAStream) {
  // Incremental engine result == an engine started fresh at each timestamp.
  SyntheticStreamParams params;
  params.num_pairs = 3;
  params.avg_graph_edges = 10;
  params.evolution.num_timestamps = 12;
  params.seed = 21;
  const StreamDataset dataset = MakeSyntheticStreams(params);

  EngineOptions options;
  options.nnt_depth = 2;
  ContinuousQueryEngine incremental(options);
  for (const Graph& q : dataset.queries) incremental.AddQuery(q);
  for (const GraphStream& s : dataset.streams) {
    incremental.AddStream(s.StartGraph());
  }
  incremental.Start();

  for (int t = 0; t < params.evolution.num_timestamps; ++t) {
    if (t > 0) {
      for (size_t i = 0; i < dataset.streams.size(); ++i) {
        incremental.ApplyChange(static_cast<int>(i),
                                dataset.streams[i].ChangeAt(t));
      }
    }
    ContinuousQueryEngine fresh(options);
    for (const Graph& q : dataset.queries) fresh.AddQuery(q);
    for (const GraphStream& s : dataset.streams) {
      fresh.AddStream(s.MaterializeAt(t));
    }
    fresh.Start();
    EXPECT_EQ(incremental.AllCandidatePairs(), fresh.AllCandidatePairs())
        << "t=" << t;
  }
}

TEST(FilterStatsTest, Averages) {
  StatsAccumulator acc;
  acc.Add(TimestampStats{0, 5, 10, 2, 1.0, 3.0});
  acc.Add(TimestampStats{1, 10, 10, 10, 3.0, 5.0});
  EXPECT_EQ(acc.num_timestamps(), 2);
  EXPECT_DOUBLE_EQ(acc.AvgCandidateRatio(), (0.5 + 1.0) / 2);
  EXPECT_DOUBLE_EQ(acc.AvgUpdateMillis(), 2.0);
  EXPECT_DOUBLE_EQ(acc.AvgJoinMillis(), 4.0);
  EXPECT_DOUBLE_EQ(acc.AvgCostMillis(), 6.0);
  EXPECT_DOUBLE_EQ(acc.AvgPrecision(), (0.4 + 1.0) / 2);
  EXPECT_TRUE(acc.CandidatesNeverBelowTruth());
}

TEST(FilterStatsTest, DetectsFalseNegativeSignature) {
  StatsAccumulator acc;
  acc.Add(TimestampStats{0, 1, 10, 3, 0.0, 0.0});
  EXPECT_FALSE(acc.CandidatesNeverBelowTruth());
}

TEST(FilterStatsTest, PrecisionSkipsMissingGroundTruth) {
  StatsAccumulator acc;
  acc.Add(TimestampStats{0, 4, 10, -1, 0.0, 0.0});
  acc.Add(TimestampStats{1, 4, 10, 2, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(acc.AvgPrecision(), 0.5);
  acc.Add(TimestampStats{2, 0, 10, 0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(acc.AvgPrecision(), 0.75);
}

}  // namespace
}  // namespace gsps
