// White-box tests for the skyline strategy's optimizations: the
// monochromatic-skyline reduction, max-value pruning, and the comparison
// counter that the early stop is supposed to keep small.

#include "gsps/join/skyline_earlystop_join.h"

#include <gtest/gtest.h>

namespace gsps {
namespace {

Npv Vec(std::initializer_list<std::pair<DimId, int32_t>> entries) {
  std::unordered_map<DimId, int32_t> counts;
  for (const auto& [dim, count] : entries) counts[dim] = count;
  return Npv::FromMap(counts);
}

TEST(SkylineInternalsTest, MaxValuePruningAvoidsAllComparisons) {
  SkylineEarlyStopJoin strategy;
  std::vector<QueryVectors> queries;
  // One query vector demanding more than any stream vector has in dim 0.
  queries.push_back(QueryVectors{{Vec({{0, 10}})}});
  strategy.SetQueries(std::move(queries));
  strategy.SetNumStreams(1);
  for (VertexId v = 0; v < 20; ++v) {
    strategy.UpdateStreamVertex(0, v, Vec({{0, 3}, {1, 5}}));
  }
  EXPECT_TRUE(strategy.CandidatesForStream(0).empty());
  // The per-dimension maximum (3 < 10) proves non-coverage without touching
  // a single stream vector.
  EXPECT_EQ(strategy.comparisons(), 0);
}

TEST(SkylineInternalsTest, MissingDimensionPrunesWithoutComparisons) {
  SkylineEarlyStopJoin strategy;
  std::vector<QueryVectors> queries;
  queries.push_back(QueryVectors{{Vec({{7, 1}})}});  // Dim 7 unseen.
  strategy.SetQueries(std::move(queries));
  strategy.SetNumStreams(1);
  strategy.UpdateStreamVertex(0, 0, Vec({{0, 5}}));
  EXPECT_TRUE(strategy.CandidatesForStream(0).empty());
  EXPECT_EQ(strategy.comparisons(), 0);
}

TEST(SkylineInternalsTest, MinCardinalityDimensionIsScanned) {
  SkylineEarlyStopJoin strategy;
  std::vector<QueryVectors> queries;
  // Query vector non-zero in dims 0 and 1.
  queries.push_back(QueryVectors{{Vec({{0, 2}, {1, 2}})}});
  strategy.SetQueries(std::move(queries));
  strategy.SetNumStreams(1);
  // Dim 0: many vectors; dim 1: exactly one vector (which dominates).
  for (VertexId v = 0; v < 10; ++v) {
    strategy.UpdateStreamVertex(0, v, Vec({{0, 9}}));
  }
  strategy.UpdateStreamVertex(0, 99, Vec({{0, 9}, {1, 9}}));
  EXPECT_EQ(strategy.CandidatesForStream(0), std::vector<int>{0});
  // Only the singleton dim-1 bucket needed scanning: one comparison.
  EXPECT_EQ(strategy.comparisons(), 1);
}

TEST(SkylineInternalsTest, DominatedQueryVectorsAreNeverChecked) {
  SkylineEarlyStopJoin strategy;
  std::vector<QueryVectors> queries;
  // q_small is dominated by q_big: only q_big is a skyline point.
  const Npv q_small = Vec({{0, 1}});
  const Npv q_big = Vec({{0, 5}, {1, 5}});
  queries.push_back(QueryVectors{{q_small, q_big}});
  strategy.SetQueries(std::move(queries));
  strategy.SetNumStreams(1);
  // A stream vector covering q_big (hence q_small transitively).
  strategy.UpdateStreamVertex(0, 0, Vec({{0, 5}, {1, 5}}));
  EXPECT_EQ(strategy.CandidatesForStream(0), std::vector<int>{0});
  // One skyline point, one bucket entry: exactly one comparison, not two.
  EXPECT_EQ(strategy.comparisons(), 1);
}

TEST(SkylineInternalsTest, EqualQueryVectorsDeduplicated) {
  SkylineEarlyStopJoin strategy;
  std::vector<QueryVectors> queries;
  const Npv q = Vec({{0, 2}});
  queries.push_back(QueryVectors{{q, q, q}});
  strategy.SetQueries(std::move(queries));
  strategy.SetNumStreams(1);
  strategy.UpdateStreamVertex(0, 0, Vec({{0, 2}}));
  EXPECT_EQ(strategy.CandidatesForStream(0), std::vector<int>{0});
  EXPECT_EQ(strategy.comparisons(), 1);
}

TEST(SkylineInternalsTest, BucketMaxRecomputedAfterRemoval) {
  SkylineEarlyStopJoin strategy;
  std::vector<QueryVectors> queries;
  queries.push_back(QueryVectors{{Vec({{0, 4}})}});
  strategy.SetQueries(std::move(queries));
  strategy.SetNumStreams(1);
  strategy.UpdateStreamVertex(0, 0, Vec({{0, 9}}));
  strategy.UpdateStreamVertex(0, 1, Vec({{0, 2}}));
  EXPECT_EQ(strategy.CandidatesForStream(0), std::vector<int>{0});
  // Removing the maximal vector must shrink the bucket max to 2 and the
  // max-value prune must now fire.
  strategy.RemoveStreamVertex(0, 0);
  const int64_t before = strategy.comparisons();
  EXPECT_TRUE(strategy.CandidatesForStream(0).empty());
  EXPECT_EQ(strategy.comparisons(), before);  // Pruned without comparisons.
}

}  // namespace
}  // namespace gsps
