// Churn soak (slow label): ≥10k interleaved add/remove/stream-change ops
// across all three strategies, with the full invariant battery asserted
// periodically — strategy churn invariants (including the slab's
// kernel-layout contract), NNT Validate against the live graph, and the
// cached candidates against the from-scratch referee. The second test pins
// the zero-steady-state-allocation guarantee: once capacities are warm,
// remove + bit-identical re-add of a query must not touch the heap (this
// binary links gsps_alloc_hook; the strict zero holds in Release builds
// without sanitizers, as in nnt_alloc_test).

#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "gsps/common/alloc_hook.h"
#include "gsps/common/random.h"
#include "gsps/engine/continuous_query_engine.h"
#include "gsps/gen/query_extractor.h"
#include "gsps/gen/stream_generator.h"
#include "gsps/gen/synthetic_generator.h"
#include "gsps/graph/graph.h"
#include "gsps/join/dominance.h"
#include "gsps/join/join_strategy.h"
#include "gsps/nnt/dimension.h"
#include "gsps/nnt/nnt_set.h"

namespace gsps {
namespace {

#if defined(NDEBUG) && !defined(__SANITIZE_ADDRESS__) && \
    !defined(__SANITIZE_THREAD__) && !defined(GSPS_SANITIZE_ENABLED)
constexpr bool kStrict = true;
#else
constexpr bool kStrict = false;
#endif

constexpr JoinKind kAllKinds[] = {
    JoinKind::kNestedLoop,
    JoinKind::kDominatedSetCover,
    JoinKind::kSkylineEarlyStop,
};

// A query over labels the synthetic generator never emits; `salt` varies
// the dim set so repeated adds keep forcing remap regrowth.
Graph FreshLabelQuery(int salt) {
  Graph g;
  g.EnsureVertex(0, 90 + 2 * salt);
  g.EnsureVertex(1, 91 + 2 * salt);
  g.AddEdge(0, 1, 80 + salt);
  return g;
}

TEST(ChurnSoakTest, TenThousandOpsKeepEveryInvariant) {
  SyntheticStreamParams params;
  params.num_pairs = 2;
  params.avg_graph_edges = 12;
  params.evolution.num_timestamps = 30;
  params.seed = 404;
  const StreamDataset dataset = MakeSyntheticStreams(params);
  std::vector<Graph> starts;
  for (const GraphStream& s : dataset.streams) starts.push_back(s.StartGraph());
  Rng qrng(405);
  std::vector<Graph> pool = ExtractQuerySet(starts, 5, 4, qrng);
  ASSERT_GE(pool.size(), 3u);
  for (int salt = 0; salt < 3; ++salt) pool.push_back(FreshLabelQuery(salt));

  int64_t total_ops = 0;
  for (const JoinKind kind : kAllKinds) {
    EngineOptions options;
    options.join_kind = kind;
    ContinuousQueryEngine engine(options);
    std::vector<int> live;
    for (int j = 0; j < 3; ++j) {
      live.push_back(engine.AddQuery(pool[static_cast<size_t>(j)]));
    }
    for (const GraphStream& s : dataset.streams) {
      engine.AddStream(s.StartGraph());
    }
    engine.Start();

    Rng rng(1000 + static_cast<uint64_t>(kind));
    int step = 0;
    for (int op = 0; op < 3500; ++op, ++total_ops) {
      if (op % 8 == 0) {
        const int t = 1 + step++ % (params.evolution.num_timestamps - 1);
        for (size_t i = 0; i < dataset.streams.size(); ++i) {
          engine.ApplyChange(static_cast<int>(i),
                             dataset.streams[i].ChangeAt(t));
        }
      }
      const bool add = live.size() < 4 ||
                       (live.size() < 10 && rng.UniformInt(0, 1) == 0);
      if (add) {
        const Graph& g =
            pool[static_cast<size_t>(rng.UniformInt(
                0, static_cast<int64_t>(pool.size()) - 1))];
        live.push_back(engine.AddQueryDynamic(g));
      } else {
        const size_t pick = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
        engine.RemoveQueryDynamic(live[pick]);
        live[pick] = live.back();
        live.pop_back();
      }
      if ((op + 1) % 500 == 0) {
        engine.CheckChurnInvariants();
        ASSERT_EQ(engine.num_active_queries(), static_cast<int>(live.size()));
        for (int i = 0; i < engine.num_streams(); ++i) {
          ASSERT_TRUE(
              engine.StreamNnts(i).Validate(engine.StreamGraph(i)))
              << JoinKindName(kind) << " op=" << op << " stream=" << i;
          ASSERT_EQ(engine.CandidatesForStream(i),
                    engine.RecomputeCandidatesFromScratch(i))
              << JoinKindName(kind) << " op=" << op << " stream=" << i;
        }
      }
    }
    engine.CheckChurnInvariants();
  }
  EXPECT_GE(total_ops, 10000);
}

TEST(ChurnSoakTest, SteadyStateRemoveReaddAllocatesNothing) {
  for (const JoinKind kind : kAllKinds) {
    DimensionTable dims;
    Rng rng(77);
    std::vector<QueryVectors> qvecs;
    for (int j = 0; j < 16; ++j) {
      const Graph g = RandomConnectedGraph(5, 4, 2, rng);
      NntSet nnts(3, &dims);
      nnts.Build(g);
      qvecs.push_back(BuildQueryVectors(nnts));
    }
    std::unique_ptr<JoinStrategy> strategy = MakeJoinStrategy(kind);
    strategy->SetQueries(qvecs);
    strategy->SetNumStreams(1);
    Graph stream_graph = RandomConnectedGraph(60, 4, 2, rng);
    NntSet stream_nnts(3, &dims);
    stream_nnts.Build(stream_graph);
    for (const VertexId root : stream_nnts.Roots()) {
      strategy->UpdateStreamVertex(0, root, stream_nnts.NpvOf(root));
    }

    // Warm every slot and scratch buffer to its high-water mark: one full
    // remove + re-add cycle over each query.
    std::vector<int> cands;
    bool grew = false;
    const int nq = static_cast<int>(qvecs.size());
    for (int j = 0; j < nq; ++j) {
      strategy->RemoveQuery(j);
      ASSERT_EQ(strategy->AddQuery(qvecs[static_cast<size_t>(j)], &grew), j);
      ASSERT_FALSE(grew);  // The remap already knows every dim.
      strategy->CandidatesForStream(0, &cands);
    }

    const AllocMeter meter;
    for (int op = 0; op < 10000; ++op) {
      const int j = op % nq;
      strategy->RemoveQuery(j);
      ASSERT_EQ(strategy->AddQuery(qvecs[static_cast<size_t>(j)], &grew), j);
      ASSERT_FALSE(grew);
      strategy->CandidatesForStream(0, &cands);
    }
    if (kStrict) {
      EXPECT_EQ(meter.allocs(), 0)
          << JoinKindName(kind) << " steady-state churn allocated";
      EXPECT_EQ(meter.frees(), 0) << JoinKindName(kind);
    } else {
      std::fprintf(stderr,
                   "[ INFO     ] %s non-strict build: %lld allocs / %lld "
                   "frees over 10k churn ops\n",
                   std::string(JoinKindName(kind)).c_str(),
                   static_cast<long long>(meter.allocs()),
                   static_cast<long long>(meter.frees()));
    }
    strategy->CheckChurnInvariants();
  }
}

}  // namespace
}  // namespace gsps
