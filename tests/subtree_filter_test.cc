// Tests for bipartite matching and the NNT subtree-embedding filter tier.

#include "gsps/nnt/subtree_filter.h"

#include <gtest/gtest.h>

#include "gsps/common/random.h"
#include "gsps/gen/query_extractor.h"
#include "gsps/gen/synthetic_generator.h"
#include "gsps/iso/bipartite_matching.h"
#include "gsps/iso/branch_compatibility.h"
#include "gsps/iso/subgraph_isomorphism.h"
#include "gsps/nnt/dimension.h"
#include "gsps/nnt/nnt_set.h"

namespace gsps {
namespace {

TEST(BipartiteMatchingTest, EmptyAndTrivialCases) {
  EXPECT_EQ(MaximumBipartiteMatching({}, 0), 0);
  EXPECT_TRUE(HasLeftPerfectMatching({}, 0));
  EXPECT_EQ(MaximumBipartiteMatching({{}}, 3), 0);
  EXPECT_FALSE(HasLeftPerfectMatching({{}}, 3));
  EXPECT_EQ(MaximumBipartiteMatching({{0}}, 1), 1);
  EXPECT_TRUE(HasLeftPerfectMatching({{0}}, 1));
}

TEST(BipartiteMatchingTest, RequiresAugmentingPaths) {
  // left0 -> {r0, r1}, left1 -> {r0}: greedy left0->r0 must be reshuffled.
  const BipartiteAdjacency adjacency = {{0, 1}, {0}};
  EXPECT_EQ(MaximumBipartiteMatching(adjacency, 2), 2);
  EXPECT_TRUE(HasLeftPerfectMatching(adjacency, 2));
}

TEST(BipartiteMatchingTest, DetectsDeficiency) {
  // Three lefts compete for two rights (Hall violation).
  const BipartiteAdjacency adjacency = {{0, 1}, {0, 1}, {0, 1}};
  EXPECT_EQ(MaximumBipartiteMatching(adjacency, 2), 2);
  EXPECT_FALSE(HasLeftPerfectMatching(adjacency, 2));
}

TEST(BipartiteMatchingTest, MoreLeftsThanRightsIsNeverPerfect) {
  EXPECT_FALSE(HasLeftPerfectMatching({{0}, {0}}, 1));
}

// Builds the NNTs of `graph` at `depth` with a throwaway dimension table.
struct BuiltNnts {
  DimensionTable dims;
  NntSet nnts;
  explicit BuiltNnts(const Graph& graph, int depth) : nnts(depth, &dims) {
    nnts.Build(graph);
  }
};

Graph Path(std::initializer_list<VertexLabel> labels) {
  Graph g;
  VertexId prev = kInvalidVertex;
  for (const VertexLabel label : labels) {
    const VertexId v = g.AddVertex(label);
    if (prev != kInvalidVertex) {
      EXPECT_TRUE(g.AddEdge(prev, v, 0));
    }
    prev = v;
  }
  return g;
}

TEST(SubtreeFilterTest, IdenticalTreesEmbed) {
  const Graph g = Path({1, 2, 3});
  BuiltNnts a(g, 3);
  BuiltNnts b(g, 3);
  for (const VertexId v : g.VertexIds()) {
    EXPECT_TRUE(NntSubtreeEmbeddable(*a.nnts.TreeOf(v), *b.nnts.TreeOf(v)));
  }
  EXPECT_TRUE(NntSubtreeFilter(a.nnts, b.nnts));
}

TEST(SubtreeFilterTest, RootLabelMismatchRejected) {
  const Graph a = Path({1, 2});
  const Graph b = Path({2, 1});
  BuiltNnts qa(a, 2);
  BuiltNnts qb(b, 2);
  // a's vertex 0 has label 1; b's vertex 0 has label 2.
  EXPECT_FALSE(NntSubtreeEmbeddable(*qa.nnts.TreeOf(0), *qb.nnts.TreeOf(0)));
  // The mirrored roots match (1 -> 1, 2 -> 2) including their children.
  EXPECT_TRUE(NntSubtreeEmbeddable(*qa.nnts.TreeOf(0), *qb.nnts.TreeOf(1)));
  EXPECT_TRUE(NntSubtreeEmbeddable(*qa.nnts.TreeOf(1), *qb.nnts.TreeOf(0)));
}

TEST(SubtreeFilterTest, ChildMultiplicityEnforced) {
  // Query center has two label-2 children; data center only one.
  Graph query;
  query.AddVertex(1);
  query.AddVertex(2);
  query.AddVertex(2);
  ASSERT_TRUE(query.AddEdge(0, 1, 0));
  ASSERT_TRUE(query.AddEdge(0, 2, 0));
  Graph data;
  data.AddVertex(1);
  data.AddVertex(2);
  data.AddVertex(3);
  ASSERT_TRUE(data.AddEdge(0, 1, 0));
  ASSERT_TRUE(data.AddEdge(0, 2, 0));
  BuiltNnts q(query, 2);
  BuiltNnts d(data, 2);
  EXPECT_FALSE(NntSubtreeEmbeddable(*q.nnts.TreeOf(0), *d.nnts.TreeOf(0)));
}

TEST(SubtreeFilterTest, EdgeLabelsMustMatch) {
  Graph query;
  query.AddVertex(1);
  query.AddVertex(2);
  ASSERT_TRUE(query.AddEdge(0, 1, 7));
  Graph data;
  data.AddVertex(1);
  data.AddVertex(2);
  ASSERT_TRUE(data.AddEdge(0, 1, 8));
  BuiltNnts q(query, 2);
  BuiltNnts d(data, 2);
  EXPECT_FALSE(NntSubtreeEmbeddable(*q.nnts.TreeOf(0), *d.nnts.TreeOf(0)));
}

TEST(SubtreeFilterTest, MatchingNeedsReshuffling) {
  // Query children: one that requires a grandchild, one that does not.
  // Data children: one with a grandchild, one without. A greedy assignment
  // of the undemanding query child onto the grandchild-bearing data child
  // must be undone by the augmenting path.
  Graph query;
  query.AddVertex(0);               // root
  query.AddVertex(1);               // child A (leaf)
  query.AddVertex(1);               // child B (has grandchild)
  query.AddVertex(2);               // grandchild
  ASSERT_TRUE(query.AddEdge(0, 1, 0));
  ASSERT_TRUE(query.AddEdge(0, 2, 0));
  ASSERT_TRUE(query.AddEdge(2, 3, 0));
  Graph data = query;               // Same shape.
  BuiltNnts q(query, 2);
  BuiltNnts d(data, 2);
  EXPECT_TRUE(NntSubtreeEmbeddable(*q.nnts.TreeOf(0), *d.nnts.TreeOf(0)));
}

TEST(SubtreeFilterTest, FilterChainOnRandomWorkload) {
  // iso => subtree-embeddable => branch-compatible, on random pairs.
  Rng rng(61);
  SyntheticParams params;
  params.num_graphs = 12;
  params.num_seeds = 4;
  params.avg_seed_edges = 4;
  params.avg_graph_edges = 14;
  params.num_vertex_labels = 3;
  const std::vector<Graph> database = GenerateSyntheticDataset(params);
  const std::vector<Graph> queries = ExtractQuerySet(database, 4, 6, rng);
  ASSERT_FALSE(queries.empty());

  int confirmed_chain = 0;
  for (int depth = 1; depth <= 3; ++depth) {
    for (const Graph& query : queries) {
      BuiltNnts q(query, depth);
      for (const Graph& data : database) {
        BuiltNnts d(data, depth);
        const bool exact = IsSubgraphIsomorphic(query, data);
        const bool subtree = NntSubtreeFilter(q.nnts, d.nnts);
        const bool branch = BranchCompatibleFilter(query, data, depth);
        if (exact) {
          EXPECT_TRUE(subtree) << "iso must imply subtree embedding";
          ++confirmed_chain;
        }
        if (subtree) {
          EXPECT_TRUE(branch) << "subtree must imply branches";
        }
      }
    }
  }
  EXPECT_GT(confirmed_chain, 0);
}

TEST(SubtreeFilterTest, StrictlyStrongerThanBranchesSomewhere) {
  // A case where branch multisets agree but the tree shapes do not:
  // query root has children {B with child C, B with child D};
  // data root has children {B with children C and D, B leaf}.
  // Branch multisets from the root coincide, but embedding the two query
  // children needs two data children with one grandchild each.
  Graph query;
  query.AddVertex(0);
  query.AddVertex(1);
  query.AddVertex(1);
  query.AddVertex(2);
  query.AddVertex(3);
  ASSERT_TRUE(query.AddEdge(0, 1, 0));
  ASSERT_TRUE(query.AddEdge(0, 2, 0));
  ASSERT_TRUE(query.AddEdge(1, 3, 0));  // B -> C
  ASSERT_TRUE(query.AddEdge(2, 4, 0));  // B -> D
  Graph data;
  data.AddVertex(0);
  data.AddVertex(1);
  data.AddVertex(1);
  data.AddVertex(2);
  data.AddVertex(3);
  ASSERT_TRUE(data.AddEdge(0, 1, 0));
  ASSERT_TRUE(data.AddEdge(0, 2, 0));
  ASSERT_TRUE(data.AddEdge(1, 3, 0));  // First B -> C
  ASSERT_TRUE(data.AddEdge(1, 4, 0));  // First B -> D
  ASSERT_TRUE(BranchCompatible(query, 0, data, 0, 2));
  BuiltNnts q(query, 2);
  BuiltNnts d(data, 2);
  EXPECT_FALSE(NntSubtreeEmbeddable(*q.nnts.TreeOf(0), *d.nnts.TreeOf(0)));
}

}  // namespace
}  // namespace gsps
