// Tests for the batched dominance kernel (gsps/join/dominance_kernel.h):
// ISA name round-trips, the NpvSlab alignment/padding contract the vector
// paths rely on, and — the load-bearing part — an exhaustive differential
// check that every compiled-and-supported ISA produces bit-identical masks,
// counts, and stats to both the scalar kernel and a brute-force oracle,
// across empty vectors, single-dim vectors, unaligned slab tails, multi-slot
// blocks, signature-reject boundaries, and dim universes past the 64-bit
// signature's aliasing point.

#include "gsps/join/dominance_kernel.h"

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "gsps/nnt/npv.h"

namespace gsps {
namespace {

std::vector<DominanceIsa> SupportedIsas() {
  std::vector<DominanceIsa> isas;
  for (int i = 0; i < kNumDominanceIsas; ++i) {
    const DominanceIsa isa = static_cast<DominanceIsa>(i);
    if (DominanceIsaSupported(isa)) isas.push_back(isa);
  }
  return isas;
}

// Sorted-by-dim entries with positive counts over [0, num_dims).
std::vector<NpvEntry> RandomVector(std::mt19937& rng, int32_t num_dims,
                                   int32_t max_nnz, int32_t max_count) {
  std::uniform_int_distribution<int32_t> nnz_dist(0, max_nnz);
  std::uniform_int_distribution<int32_t> dim_dist(0, num_dims - 1);
  std::uniform_int_distribution<int32_t> count_dist(1, max_count);
  std::vector<int32_t> dims;
  const int32_t want = std::min(nnz_dist(rng), num_dims);
  while (static_cast<int32_t>(dims.size()) < want) {
    const int32_t dim = dim_dist(rng);
    if (std::find(dims.begin(), dims.end(), dim) == dims.end()) {
      dims.push_back(dim);
    }
  }
  std::sort(dims.begin(), dims.end());
  std::vector<NpvEntry> entries;
  entries.reserve(dims.size());
  for (const int32_t dim : dims) {
    entries.push_back(NpvEntry{dim, count_dist(rng)});
  }
  return entries;
}

struct Oracle {
  std::vector<bool> dominated;
  std::vector<int32_t> satisfied;
  int64_t tests = 0;
  int64_t sig_rejects = 0;
};

Oracle BruteForce(const NpvSlab& slab, const std::vector<NpvEntry>& hay,
                  NpvSignature hay_sig, int32_t num_dims) {
  Oracle oracle;
  std::vector<int32_t> dense(static_cast<size_t>(std::max(num_dims, 1)), 0);
  for (const NpvEntry& e : hay) dense[static_cast<size_t>(e.dim)] = e.count;
  for (int32_t k = 0; k < slab.size(); ++k) {
    if (SignatureCovers(hay_sig, slab.signature(k))) {
      ++oracle.tests;
    } else {
      ++oracle.sig_rejects;
    }
    bool dominated = true;
    int32_t satisfied = 0;
    for (const NpvEntry* e = slab.begin(k); e != slab.end(k); ++e) {
      if (dense[static_cast<size_t>(e->dim)] >= e->count) {
        ++satisfied;
      } else {
        dominated = false;
      }
    }
    oracle.dominated.push_back(dominated);
    oracle.satisfied.push_back(satisfied);
  }
  return oracle;
}

TEST(DominanceIsaTest, NameParseRoundTrip) {
  for (int i = 0; i < kNumDominanceIsas; ++i) {
    const DominanceIsa isa = static_cast<DominanceIsa>(i);
    const auto parsed = ParseDominanceIsa(DominanceIsaName(isa));
    ASSERT_TRUE(parsed.has_value()) << DominanceIsaName(isa);
    EXPECT_EQ(*parsed, isa);
  }
  EXPECT_FALSE(ParseDominanceIsa("").has_value());
  EXPECT_FALSE(ParseDominanceIsa("sse2").has_value());
  EXPECT_FALSE(ParseDominanceIsa("AVX2").has_value());
}

TEST(DominanceIsaTest, ScalarAlwaysAvailable) {
  EXPECT_TRUE(DominanceIsaCompiled(DominanceIsa::kScalar));
  EXPECT_TRUE(DominanceIsaSupported(DominanceIsa::kScalar));
  // The dispatch decision must itself be a supported ISA.
  EXPECT_TRUE(DominanceIsaSupported(ActiveDominanceIsa()));
}

TEST(DominanceIsaTest, BatchCountersAreDistinct) {
  EXPECT_NE(DominanceBatchCounter(DominanceIsa::kScalar),
            DominanceBatchCounter(DominanceIsa::kAvx2));
  EXPECT_NE(DominanceBatchCounter(DominanceIsa::kAvx2),
            DominanceBatchCounter(DominanceIsa::kAvx512));
}

TEST(NpvSlabLayoutTest, AlignmentAndSentinelPadding) {
  NpvSlab slab;
  std::mt19937 rng(11);
  for (int append = 0; append < 23; ++append) {
    slab.Append(RandomVector(rng, 40, 9, 5));
    // The contract must hold after EVERY append, not just the last one.
    slab.CheckKernelLayout();
    EXPECT_EQ(reinterpret_cast<uintptr_t>(slab.entry_data()) %
                  kNpvSlabAlignment,
              0u);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(slab.sig_data()) % kNpvSlabAlignment,
              0u);
    EXPECT_EQ(slab.padded_entries() % kNpvSlabEntryPad, 0);
    EXPECT_EQ(slab.padded_sigs() % kNpvSlabSigPad, 0);
    EXPECT_GE(slab.padded_entries(), slab.num_entries());
    EXPECT_GE(slab.padded_sigs(), slab.size());
    for (int32_t e = slab.num_entries(); e < slab.padded_entries(); ++e) {
      EXPECT_EQ(slab.entry_data()[e].dim, 0);
      EXPECT_EQ(slab.entry_data()[e].count, 0);
    }
    for (int32_t s = slab.size(); s < slab.padded_sigs(); ++s) {
      EXPECT_EQ(slab.sig_data()[s], ~NpvSignature{0});
    }
  }
}

TEST(DominanceBatchTest, EmptySlab) {
  NpvSlab slab;
  const std::vector<NpvEntry> hay = {NpvEntry{0, 3}};
  for (const DominanceIsa isa : SupportedIsas()) {
    DominanceBatch batch(isa);
    batch.Bind(slab, 4);
    DominanceKernelStats stats;
    batch.ComputeMask(hay.data(), hay.data() + hay.size(),
                      SignatureOf(hay.data(), hay.data() + hay.size()),
                      &stats);
    EXPECT_EQ(stats.tests, 0) << DominanceIsaName(isa);
    EXPECT_EQ(stats.sig_rejects, 0) << DominanceIsaName(isa);
    EXPECT_EQ(stats.batches, 1) << DominanceIsaName(isa);
  }
}

TEST(DominanceBatchTest, EmptyNeedleIsDominatedByAnything) {
  NpvSlab slab;
  slab.Append({});  // nnz == 0: vacuously dominated, even by an empty hay.
  slab.Append({NpvEntry{2, 1}});
  for (const DominanceIsa isa : SupportedIsas()) {
    DominanceBatch batch(isa);
    batch.Bind(slab, 3);
    DominanceKernelStats stats;
    batch.ComputeMask(nullptr, nullptr, 0, &stats);
    EXPECT_TRUE(batch.Dominated(0)) << DominanceIsaName(isa);
    EXPECT_FALSE(batch.Dominated(1)) << DominanceIsaName(isa);
    EXPECT_EQ(stats.tests, 1) << DominanceIsaName(isa);
    EXPECT_EQ(stats.sig_rejects, 1) << DominanceIsaName(isa);
  }
}

// Signature-reject boundaries: counts equal (dominates), count one higher
// (signature accepts, compare fails), disjoint dim (signature rejects).
TEST(DominanceBatchTest, SignatureAndCompareBoundaries) {
  NpvSlab slab;
  slab.Append({NpvEntry{1, 4}});              // Equal count: dominated.
  slab.Append({NpvEntry{1, 5}});              // count+1: accept, not dominated.
  slab.Append({NpvEntry{2, 1}});              // Disjoint dim: sig reject.
  slab.Append({NpvEntry{1, 4}, NpvEntry{2, 1}});  // Partially satisfied.
  const std::vector<NpvEntry> hay = {NpvEntry{1, 4}};
  const NpvSignature hay_sig = SignatureOf(hay.data(), hay.data() + 1);
  for (const DominanceIsa isa : SupportedIsas()) {
    DominanceBatch batch(isa);
    batch.Bind(slab, 3);
    DominanceKernelStats stats;
    batch.ComputeMask(hay.data(), hay.data() + 1, hay_sig, &stats);
    EXPECT_TRUE(batch.Dominated(0)) << DominanceIsaName(isa);
    EXPECT_FALSE(batch.Dominated(1)) << DominanceIsaName(isa);
    EXPECT_FALSE(batch.Dominated(2)) << DominanceIsaName(isa);
    EXPECT_FALSE(batch.Dominated(3)) << DominanceIsaName(isa);
    EXPECT_EQ(stats.tests, 2) << DominanceIsaName(isa);
    EXPECT_EQ(stats.sig_rejects, 2) << DominanceIsaName(isa);

    batch.ComputeCounts(hay.data(), hay.data() + 1, &stats);
    EXPECT_EQ(batch.SatisfiedCount(0), 1) << DominanceIsaName(isa);
    EXPECT_EQ(batch.SatisfiedCount(1), 0) << DominanceIsaName(isa);
    EXPECT_EQ(batch.SatisfiedCount(2), 0) << DominanceIsaName(isa);
    EXPECT_EQ(batch.SatisfiedCount(3), 1) << DominanceIsaName(isa);
  }
}

// The main property: every supported ISA agrees bit-for-bit with the brute
// oracle (and hence with scalar) on masks, counts, and stats. Slab sizes
// straddle the 8- and 16-lane block boundaries to exercise unaligned tails
// and phantom lanes; dim universes straddle 64 to exercise signature
// aliasing; nnz up to 24 exercises multi-slot blocks.
TEST(DominanceBatchTest, DifferentialAgainstBruteForce) {
  const std::vector<DominanceIsa> isas = SupportedIsas();
  std::mt19937 rng(20260808);
  const int32_t slab_sizes[] = {1, 2, 7, 8, 9, 15, 16, 17, 31, 33, 64, 65};
  const int32_t dim_universes[] = {1, 7, 64, 70, 130};
  for (const int32_t num_dims : dim_universes) {
    for (const int32_t slab_size : slab_sizes) {
      NpvSlab slab;
      for (int32_t k = 0; k < slab_size; ++k) {
        slab.Append(RandomVector(rng, num_dims, 24, 4));
      }
      std::vector<DominanceBatch> batches;
      batches.reserve(isas.size());
      for (const DominanceIsa isa : isas) {
        batches.emplace_back(isa);
        batches.back().Bind(slab, num_dims);
      }
      for (int hay_case = 0; hay_case < 12; ++hay_case) {
        // Mix sparse hays (reject-heavy) and near-dense hays (accept-heavy);
        // hay_case 0 is the empty hay.
        const int32_t hay_nnz =
            hay_case == 0 ? 0 : (hay_case % 2 == 0 ? 4 : num_dims);
        const std::vector<NpvEntry> hay =
            RandomVector(rng, num_dims, hay_nnz, 6);
        const NpvSignature hay_sig =
            SignatureOf(hay.data(), hay.data() + hay.size());
        const Oracle oracle = BruteForce(slab, hay, hay_sig, num_dims);
        for (size_t b = 0; b < batches.size(); ++b) {
          DominanceKernelStats stats;
          batches[b].ComputeMask(hay.data(), hay.data() + hay.size(), hay_sig,
                                 &stats);
          for (int32_t k = 0; k < slab_size; ++k) {
            ASSERT_EQ(batches[b].Dominated(k), oracle.dominated[k])
                << DominanceIsaName(isas[b]) << " dims=" << num_dims
                << " slab=" << slab_size << " hay_case=" << hay_case
                << " k=" << k;
          }
          // Bits past the slab must be zero in every exposed mask word.
          int64_t mask_pop = 0;
          for (const uint64_t word : batches[b].mask_words()) {
            mask_pop += __builtin_popcountll(word);
          }
          int64_t oracle_pop = 0;
          for (const bool d : oracle.dominated) oracle_pop += d ? 1 : 0;
          EXPECT_EQ(mask_pop, oracle_pop) << DominanceIsaName(isas[b]);
          EXPECT_EQ(stats.tests, oracle.tests) << DominanceIsaName(isas[b]);
          EXPECT_EQ(stats.sig_rejects, oracle.sig_rejects)
              << DominanceIsaName(isas[b]);
          EXPECT_EQ(stats.batches, 1) << DominanceIsaName(isas[b]);

          batches[b].ComputeCounts(hay.data(), hay.data() + hay.size(),
                                   &stats);
          for (int32_t k = 0; k < slab_size; ++k) {
            ASSERT_EQ(batches[b].SatisfiedCount(k), oracle.satisfied[k])
                << DominanceIsaName(isas[b]) << " dims=" << num_dims
                << " slab=" << slab_size << " hay_case=" << hay_case
                << " k=" << k;
          }
        }
      }
    }
  }
}

// Rebinding the same batch to a grown slab must not leak state from the
// previous binding (the strategies bind once, but the bench rebinds).
TEST(DominanceBatchTest, RebindResetsState) {
  std::mt19937 rng(5);
  NpvSlab slab;
  slab.Append({NpvEntry{0, 1}});
  for (const DominanceIsa isa : SupportedIsas()) {
    DominanceBatch batch(isa);
    batch.Bind(slab, 2);
    DominanceKernelStats stats;
    const std::vector<NpvEntry> hay = {NpvEntry{0, 2}, NpvEntry{1, 2}};
    batch.ComputeMask(hay.data(), hay.data() + 2,
                      SignatureOf(hay.data(), hay.data() + 2), &stats);
    EXPECT_TRUE(batch.Dominated(0));

    NpvSlab bigger;
    for (int32_t k = 0; k < 21; ++k) {
      bigger.Append(RandomVector(rng, 10, 6, 3));
    }
    batch.Bind(bigger, 10);
    EXPECT_EQ(batch.bound_size(), 21);
    const std::vector<NpvEntry> hay2 = RandomVector(rng, 10, 10, 6);
    const NpvSignature sig2 =
        SignatureOf(hay2.data(), hay2.data() + hay2.size());
    const Oracle oracle = BruteForce(bigger, hay2, sig2, 10);
    batch.ComputeMask(hay2.data(), hay2.data() + hay2.size(), sig2, &stats);
    for (int32_t k = 0; k < 21; ++k) {
      EXPECT_EQ(batch.Dominated(k), oracle.dominated[k])
          << DominanceIsaName(isa) << " k=" << k;
    }
  }
}

}  // namespace
}  // namespace gsps
