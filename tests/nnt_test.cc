// Tests for Node-Neighbor Trees: construction, incremental maintenance
// (insert/delete), indexes, and projection (dimensions + NPVs).
//
// The central properties, checked on randomized workloads:
//   * after any sequence of edge inserts/deletes, the incrementally
//     maintained trees equal a from-scratch rebuild (same branch multisets)
//     and Validate() holds (index consistency, dimension recounts, and an
//     independent simple-path enumeration oracle);
//   * NPVs derived incrementally equal NPVs of the rebuild.

#include "gsps/nnt/nnt_set.h"

#include <gtest/gtest.h>

#include <vector>

#include "gsps/common/random.h"
#include "gsps/gen/stream_generator.h"
#include "gsps/gen/synthetic_generator.h"
#include "gsps/graph/graph_change.h"
#include "gsps/nnt/dimension.h"
#include "gsps/nnt/npv.h"

namespace gsps {
namespace {

// The paper's Figure 3 example graph: vertices 1..6 (here 0..5) with labels
// A,B,A,C,B,C and edges forming the example topology.
Graph PaperExampleGraph() {
  Graph g;
  const VertexLabel kA = 0, kB = 1, kC = 2;
  g.AddVertex(kA);  // 0
  g.AddVertex(kB);  // 1
  g.AddVertex(kA);  // 2
  g.AddVertex(kC);  // 3
  g.AddVertex(kB);  // 4
  g.AddVertex(kC);  // 5
  EXPECT_TRUE(g.AddEdge(0, 1, 0));
  EXPECT_TRUE(g.AddEdge(1, 2, 0));
  EXPECT_TRUE(g.AddEdge(1, 3, 0));
  EXPECT_TRUE(g.AddEdge(2, 4, 0));
  EXPECT_TRUE(g.AddEdge(3, 5, 0));
  return g;
}

// Asserts that `nnts` is internally consistent and that every tree matches
// a from-scratch rebuild of `graph`.
void ExpectMatchesRebuild(const NntSet& nnts, const Graph& graph, int depth) {
  ASSERT_TRUE(nnts.Validate(graph));
  DimensionTable fresh_dims;
  NntSet fresh(depth, &fresh_dims);
  fresh.Build(graph);
  ASSERT_EQ(nnts.Roots(), fresh.Roots());
  for (const VertexId root : fresh.Roots()) {
    EXPECT_EQ(nnts.BranchesOf(root), fresh.BranchesOf(root))
        << "root " << root;
  }
  EXPECT_EQ(nnts.TotalTreeNodes(), fresh.TotalTreeNodes());
}

TEST(NntTest, BuildSingleVertex) {
  Graph g;
  g.AddVertex(7);
  DimensionTable dims;
  NntSet nnts(3, &dims);
  nnts.Build(g);
  ASSERT_NE(nnts.TreeOf(0), nullptr);
  EXPECT_EQ(nnts.TreeOf(0)->NumAliveNodes(), 1);
  EXPECT_EQ(nnts.NpvOf(0).nnz(), 0);
  EXPECT_TRUE(nnts.Validate(g));
}

TEST(NntTest, BuildPaperExample) {
  const Graph g = PaperExampleGraph();
  DimensionTable dims;
  NntSet nnts(2, &dims);
  nnts.Build(g);
  EXPECT_TRUE(nnts.Validate(g));
  // Vertex 0 (label A) at depth 2: paths 0-1, 0-1-2, 0-1-3.
  const auto branches = nnts.BranchesOf(0);
  int64_t total = 0;
  for (const auto& [sig, count] : branches) total += count;
  EXPECT_EQ(total, 3);
  // Its NPV: one level-1 (A,B) edge, level-2 (B,A) and (B,C).
  const Npv npv = nnts.NpvOf(0);
  EXPECT_EQ(npv.nnz(), 3);
  const DimId d1 = *dims.Find(1, 0, 1);
  EXPECT_EQ(npv.ValueAt(d1), 1);
}

TEST(NntTest, TreeCountsMatchDegreeStructure) {
  // Star: center connected to 4 leaves; depth 2.
  Graph g;
  g.AddVertex(0);
  for (int i = 0; i < 4; ++i) {
    g.AddVertex(1);
    EXPECT_TRUE(g.AddEdge(0, i + 1, 0));
  }
  DimensionTable dims;
  NntSet nnts(2, &dims);
  nnts.Build(g);
  // Center tree: root + 4 children (depth-2 continuations would revisit the
  // same edge, so none exist).
  EXPECT_EQ(nnts.TreeOf(0)->NumAliveNodes(), 5);
  // Leaf tree: root + center + 3 siblings at depth 2.
  EXPECT_EQ(nnts.TreeOf(1)->NumAliveNodes(), 5);
  EXPECT_TRUE(nnts.Validate(g));
}

TEST(NntTest, EdgeSimplePathsAllowRevisitingVertices) {
  // Triangle at depth 3: paths may return to the root through unused edges.
  Graph g;
  g.AddVertex(0);
  g.AddVertex(0);
  g.AddVertex(0);
  EXPECT_TRUE(g.AddEdge(0, 1, 0));
  EXPECT_TRUE(g.AddEdge(1, 2, 0));
  EXPECT_TRUE(g.AddEdge(0, 2, 0));
  DimensionTable dims;
  NntSet nnts(3, &dims);
  nnts.Build(g);
  // From the root: 2 length-1, 2 length-2, 2 length-3 = 6 non-root nodes.
  EXPECT_EQ(nnts.TreeOf(0)->NumAliveNodes(), 7);
  EXPECT_TRUE(nnts.Validate(g));
}

TEST(NntTest, InsertEdgeMatchesRebuild) {
  Graph g = PaperExampleGraph();
  DimensionTable dims;
  NntSet nnts(2, &dims);
  nnts.Build(g);
  // The paper's running example: insert edge (0-based) {0, 3}.
  ASSERT_TRUE(g.AddEdge(0, 3, 0));
  nnts.InsertEdge(g, 0, 3);
  ExpectMatchesRebuild(nnts, g, 2);
}

TEST(NntTest, DeleteEdgeMatchesRebuild) {
  Graph g = PaperExampleGraph();
  DimensionTable dims;
  NntSet nnts(2, &dims);
  nnts.Build(g);
  // The paper's running example: delete edge {1, 3} (paper's (1,3)).
  nnts.DeleteEdge(1, 3);
  ASSERT_TRUE(g.RemoveEdge(1, 3));
  ExpectMatchesRebuild(nnts, g, 2);
}

TEST(NntTest, InsertIntoEmptyVertexPairCreatesTrees) {
  Graph g;
  g.AddVertex(1);
  DimensionTable dims;
  NntSet nnts(3, &dims);
  nnts.Build(g);
  // New vertex arrives via an edge insertion.
  ASSERT_TRUE(g.EnsureVertex(1, 2));
  ASSERT_TRUE(g.AddEdge(0, 1, 0));
  nnts.InsertEdge(g, 0, 1);
  ExpectMatchesRebuild(nnts, g, 3);
  EXPECT_EQ(nnts.TreeOf(1)->NumAliveNodes(), 2);
}

TEST(NntTest, DeleteThenReinsertRestoresState) {
  Graph g = PaperExampleGraph();
  DimensionTable dims;
  NntSet nnts(3, &dims);
  nnts.Build(g);
  const auto before = nnts.BranchesOf(1);
  nnts.DeleteEdge(1, 2);
  ASSERT_TRUE(g.RemoveEdge(1, 2));
  ExpectMatchesRebuild(nnts, g, 3);
  ASSERT_TRUE(g.AddEdge(1, 2, 0));
  nnts.InsertEdge(g, 1, 2);
  ExpectMatchesRebuild(nnts, g, 3);
  EXPECT_EQ(nnts.BranchesOf(1), before);
}

TEST(NntTest, DirtyRootsReportedOnChange) {
  Graph g = PaperExampleGraph();
  DimensionTable dims;
  NntSet nnts(2, &dims);
  nnts.Build(g);
  // Build marks everything dirty.
  EXPECT_EQ(nnts.TakeDirtyRoots().size(), 6u);
  EXPECT_TRUE(nnts.TakeDirtyRoots().empty());
  // Deleting a pendant edge touches trees within depth of both endpoints.
  nnts.DeleteEdge(3, 5);
  ASSERT_TRUE(g.RemoveEdge(3, 5));
  const std::vector<VertexId> dirty = nnts.TakeDirtyRoots();
  EXPECT_FALSE(dirty.empty());
  for (const VertexId v : dirty) {
    EXPECT_TRUE(g.HasVertex(v));
  }
  ExpectMatchesRebuild(nnts, g, 2);
}

TEST(NntTest, RemoveTreeAfterIsolation) {
  Graph g;
  g.AddVertex(0);
  g.AddVertex(1);
  ASSERT_TRUE(g.AddEdge(0, 1, 0));
  DimensionTable dims;
  NntSet nnts(2, &dims);
  nnts.Build(g);
  nnts.DeleteEdge(0, 1);
  ASSERT_TRUE(g.RemoveEdge(0, 1));
  nnts.RemoveTree(1);
  ASSERT_TRUE(g.RemoveVertex(1));
  EXPECT_EQ(nnts.TreeOf(1), nullptr);
  EXPECT_EQ(nnts.Roots(), std::vector<VertexId>{0});
  ExpectMatchesRebuild(nnts, g, 2);
}

// Property test: a randomized mixed insert/delete workload, incremental vs
// rebuild, across depths.
class NntRandomWorkloadTest : public ::testing::TestWithParam<int> {};

TEST_P(NntRandomWorkloadTest, IncrementalEqualsRebuild) {
  const int depth = GetParam();
  Rng rng(1000 + static_cast<uint64_t>(depth));
  // A pool of vertices; edges toggled randomly.
  constexpr int kNumVertices = 14;
  constexpr int kSteps = 120;
  Graph g;
  for (int i = 0; i < kNumVertices; ++i) {
    g.AddVertex(static_cast<VertexLabel>(rng.UniformInt(0, 2)));
  }
  DimensionTable dims;
  NntSet nnts(depth, &dims);
  nnts.Build(g);
  for (int step = 0; step < kSteps; ++step) {
    const VertexId a =
        static_cast<VertexId>(rng.UniformInt(0, kNumVertices - 1));
    const VertexId b =
        static_cast<VertexId>(rng.UniformInt(0, kNumVertices - 1));
    if (a == b) continue;
    if (g.HasEdge(a, b)) {
      nnts.DeleteEdge(a, b);
      ASSERT_TRUE(g.RemoveEdge(a, b));
    } else {
      ASSERT_TRUE(g.AddEdge(a, b, static_cast<EdgeLabel>(step % 2)));
      nnts.InsertEdge(g, a, b);
    }
    // Full validation is expensive; do it on a sample of steps plus the
    // final state.
    if (step % 20 == 19 || step == kSteps - 1) {
      ExpectMatchesRebuild(nnts, g, depth);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, NntRandomWorkloadTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(NntTest, StreamWorkloadStaysConsistent) {
  // Drive a generated stream through incremental maintenance.
  SyntheticStreamParams params;
  params.num_pairs = 2;
  params.avg_graph_edges = 12;
  params.evolution.num_timestamps = 40;
  params.seed = 5;
  const StreamDataset dataset = MakeSyntheticStreams(params);
  for (const GraphStream& stream : dataset.streams) {
    DimensionTable dims;
    NntSet nnts(3, &dims);
    Graph g = stream.StartGraph();
    nnts.Build(g);
    for (int t = 1; t < stream.NumTimestamps(); ++t) {
      for (const EdgeOp& op : stream.ChangeAt(t).ops) {
        if (op.kind == EdgeOp::Kind::kDelete) {
          if (!g.HasEdge(op.u, op.v)) continue;
          nnts.DeleteEdge(op.u, op.v);
          ASSERT_TRUE(g.RemoveEdge(op.u, op.v));
        } else {
          ASSERT_TRUE(g.EnsureVertex(op.u, op.u_label));
          ASSERT_TRUE(g.EnsureVertex(op.v, op.v_label));
          if (!g.AddEdge(op.u, op.v, op.edge_label)) continue;
          nnts.InsertEdge(g, op.u, op.v);
        }
      }
      if (t % 10 == 0 || t == stream.NumTimestamps() - 1) {
        ExpectMatchesRebuild(nnts, g, 3);
      }
    }
  }
}

TEST(NpvTest, FromMapDropsZeros) {
  std::unordered_map<DimId, int32_t> counts = {{3, 2}, {1, 0}, {7, 5}};
  const Npv npv = Npv::FromMap(counts);
  EXPECT_EQ(npv.nnz(), 2);
  EXPECT_EQ(npv.ValueAt(1), 0);
  EXPECT_EQ(npv.ValueAt(3), 2);
  EXPECT_EQ(npv.ValueAt(7), 5);
  EXPECT_EQ(npv.ValueAt(99), 0);
}

TEST(NpvTest, DominanceBasics) {
  const Npv a = Npv::FromMap({{1, 2}, {2, 3}});
  const Npv b = Npv::FromMap({{1, 1}, {2, 3}});
  const Npv c = Npv::FromMap({{1, 1}, {3, 1}});
  const Npv empty;
  EXPECT_TRUE(a.Dominates(b));
  EXPECT_FALSE(b.Dominates(a));
  EXPECT_TRUE(a.Dominates(a));
  EXPECT_FALSE(a.Dominates(c));  // Dimension 3 missing in a.
  EXPECT_FALSE(c.Dominates(a));
  EXPECT_TRUE(a.Dominates(empty));
  EXPECT_FALSE(empty.Dominates(a));
  EXPECT_TRUE(empty.Dominates(empty));
}

TEST(DimensionTableTest, InternIsIdempotentAndDense) {
  DimensionTable dims;
  const DimId a = dims.Intern(1, 0, 1);
  const DimId b = dims.Intern(2, 0, 1);
  const DimId c = dims.Intern(1, 0, 1);
  EXPECT_EQ(a, c);
  EXPECT_NE(a, b);
  EXPECT_EQ(dims.size(), 2);
  EXPECT_EQ(dims.Get(a).level, 1);
  EXPECT_EQ(dims.Get(b).level, 2);
  EXPECT_FALSE(dims.Find(3, 0, 1).has_value());
  EXPECT_EQ(*dims.Find(2, 0, 1), b);
}

TEST(DimensionTableTest, DistinguishesDirectionOfLabels) {
  DimensionTable dims;
  const DimId ab = dims.Intern(1, 0, 1);
  const DimId ba = dims.Intern(1, 1, 0);
  EXPECT_NE(ab, ba);
}

}  // namespace
}  // namespace gsps
