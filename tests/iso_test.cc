// Tests for the exact subgraph isomorphism checker and branch compatibility.

#include "gsps/iso/subgraph_isomorphism.h"

#include <gtest/gtest.h>

#include "gsps/common/random.h"
#include "gsps/gen/query_extractor.h"
#include "gsps/gen/synthetic_generator.h"
#include "gsps/iso/branch_compatibility.h"

namespace gsps {
namespace {

Graph Path(std::initializer_list<VertexLabel> labels) {
  Graph g;
  VertexId prev = kInvalidVertex;
  for (const VertexLabel label : labels) {
    const VertexId v = g.AddVertex(label);
    if (prev != kInvalidVertex) {
      EXPECT_TRUE(g.AddEdge(prev, v, 0));
    }
    prev = v;
  }
  return g;
}

Graph Cycle(int n, VertexLabel label) {
  Graph g;
  for (int i = 0; i < n; ++i) g.AddVertex(label);
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(g.AddEdge(i, (i + 1) % n, 0));
  }
  return g;
}

TEST(IsoTest, EmptyQueryIsAlwaysContained) {
  EXPECT_TRUE(IsSubgraphIsomorphic(Graph(), Path({1, 2})));
  EXPECT_TRUE(IsSubgraphIsomorphic(Graph(), Graph()));
}

TEST(IsoTest, SingleVertexMatchesByLabel) {
  Graph q;
  q.AddVertex(2);
  EXPECT_TRUE(IsSubgraphIsomorphic(q, Path({1, 2})));
  EXPECT_FALSE(IsSubgraphIsomorphic(q, Path({1, 3})));
}

TEST(IsoTest, PathInPath) {
  EXPECT_TRUE(IsSubgraphIsomorphic(Path({1, 2}), Path({3, 1, 2})));
  EXPECT_TRUE(IsSubgraphIsomorphic(Path({2, 1}), Path({3, 1, 2})));
  EXPECT_FALSE(IsSubgraphIsomorphic(Path({2, 2}), Path({3, 1, 2})));
}

TEST(IsoTest, PathInCycleButNotViceVersa) {
  const Graph p3 = Path({1, 1, 1});
  const Graph c4 = Cycle(4, 1);
  EXPECT_TRUE(IsSubgraphIsomorphic(p3, c4));
  EXPECT_FALSE(IsSubgraphIsomorphic(c4, p3));
}

TEST(IsoTest, TriangleNotInSquare) {
  EXPECT_FALSE(IsSubgraphIsomorphic(Cycle(3, 1), Cycle(4, 1)));
}

TEST(IsoTest, NonInducedSemantics) {
  // Query: path a-b-c. Data: triangle. The extra data edge must not matter.
  EXPECT_TRUE(IsSubgraphIsomorphic(Path({1, 1, 1}), Cycle(3, 1)));
}

TEST(IsoTest, EdgeLabelsMustMatch) {
  Graph q;
  q.AddVertex(1);
  q.AddVertex(1);
  EXPECT_TRUE(q.AddEdge(0, 1, 5));
  Graph g;
  g.AddVertex(1);
  g.AddVertex(1);
  EXPECT_TRUE(g.AddEdge(0, 1, 6));
  EXPECT_FALSE(IsSubgraphIsomorphic(q, g));
  EXPECT_TRUE(g.RemoveEdge(0, 1));
  EXPECT_TRUE(g.AddEdge(0, 1, 5));
  EXPECT_TRUE(IsSubgraphIsomorphic(q, g));
}

TEST(IsoTest, FindEmbeddingReturnsValidMapping) {
  const Graph q = Path({1, 2, 3});
  Graph g = Path({3, 2, 1});
  const VertexId extra = g.AddVertex(9);
  EXPECT_TRUE(g.AddEdge(0, extra, 0));
  const std::optional<Embedding> embedding = FindEmbedding(q, g);
  ASSERT_TRUE(embedding.has_value());
  ASSERT_EQ(embedding->query_order.size(), 3u);
  // Check the mapping is a genuine homomorphism + injective.
  for (size_t i = 0; i < embedding->query_order.size(); ++i) {
    const VertexId qu = embedding->query_order[i];
    const VertexId du = embedding->mapping[i];
    EXPECT_EQ(q.GetVertexLabel(qu), g.GetVertexLabel(du));
    for (size_t k = i + 1; k < embedding->query_order.size(); ++k) {
      EXPECT_NE(du, embedding->mapping[k]);
      if (q.HasEdge(qu, embedding->query_order[k])) {
        EXPECT_TRUE(g.HasEdge(du, embedding->mapping[k]));
      }
    }
  }
}

TEST(IsoTest, CountEmbeddingsCountsAutomorphicImages) {
  // A 1-edge query with equal labels embeds into a triangle 6 ways.
  Graph q;
  q.AddVertex(1);
  q.AddVertex(1);
  EXPECT_TRUE(q.AddEdge(0, 1, 0));
  EXPECT_EQ(CountEmbeddings(q, Cycle(3, 1), 0), 6);
  EXPECT_EQ(CountEmbeddings(q, Cycle(3, 1), 4), 4);  // Limit respected.
}

TEST(IsoTest, ForEachEmbeddingVisitsAll) {
  Graph q;
  q.AddVertex(1);
  q.AddVertex(1);
  EXPECT_TRUE(q.AddEdge(0, 1, 0));
  int visits = 0;
  ForEachEmbedding(q, Cycle(3, 1), 0, [&visits](const Embedding&) {
    ++visits;
    return true;
  });
  EXPECT_EQ(visits, 6);
  visits = 0;
  ForEachEmbedding(q, Cycle(3, 1), 0, [&visits](const Embedding&) {
    ++visits;
    return visits < 2;  // Early stop.
  });
  EXPECT_EQ(visits, 2);
}

TEST(IsoTest, ExtractedSubgraphsAreAlwaysContained) {
  // Property: a subgraph extracted from G is subgraph-isomorphic to G.
  Rng rng(99);
  SyntheticParams params;
  params.num_graphs = 20;
  params.num_seeds = 5;
  params.avg_seed_edges = 4;
  params.avg_graph_edges = 18;
  const std::vector<Graph> dataset = GenerateSyntheticDataset(params);
  int checked = 0;
  for (const Graph& g : dataset) {
    std::optional<Graph> q = ExtractConnectedSubgraph(g, 5, rng);
    if (!q.has_value()) continue;
    EXPECT_TRUE(IsSubgraphIsomorphic(*q, g));
    ++checked;
  }
  EXPECT_GT(checked, 10);
}

TEST(IsoTest, StateBudgetAbortsConservatively) {
  // With a tiny state budget the checker gives up and reports "no" — the
  // documented conservative behavior (callers relying on exactness use the
  // default, effectively unlimited, budget).
  Graph clique;
  for (int i = 0; i < 9; ++i) clique.AddVertex(0);
  for (int i = 0; i < 9; ++i) {
    for (int k = i + 1; k < 9; ++k) {
      ASSERT_TRUE(clique.AddEdge(i, k, 0));
    }
  }
  Graph query = Cycle(8, 0);
  IsoOptions strict;
  strict.max_states = 3;
  EXPECT_FALSE(IsSubgraphIsomorphic(query, clique, strict));
  EXPECT_TRUE(IsSubgraphIsomorphic(query, clique));  // Default budget.
}

TEST(BranchCompatibilityTest, EnumerateBranchesCountsSimplePaths) {
  // Triangle with distinct labels: from vertex 0 at depth 2 the simple
  // paths are 0-1, 0-2, 0-1-2, 0-2-1.
  Graph g;
  g.AddVertex(1);
  g.AddVertex(2);
  g.AddVertex(3);
  EXPECT_TRUE(g.AddEdge(0, 1, 0));
  EXPECT_TRUE(g.AddEdge(1, 2, 0));
  EXPECT_TRUE(g.AddEdge(0, 2, 0));
  const auto branches = EnumerateBranches(g, 0, 2);
  int64_t total = 0;
  for (const auto& [sig, count] : branches) total += count;
  EXPECT_EQ(total, 4);
  // Depth 3: edge-simple allows closing the cycle: 0-1-2-0 and 0-2-1-0.
  const auto deeper = EnumerateBranches(g, 0, 3);
  total = 0;
  for (const auto& [sig, count] : deeper) total += count;
  EXPECT_EQ(total, 6);
}

TEST(BranchCompatibilityTest, IsomorphismImpliesBranchCompatibility) {
  // Lemma 4.1, checked on random extracted pairs.
  Rng rng(7);
  SyntheticParams params;
  params.num_graphs = 12;
  params.num_seeds = 4;
  params.avg_seed_edges = 4;
  params.avg_graph_edges = 15;
  const std::vector<Graph> dataset = GenerateSyntheticDataset(params);
  int checked = 0;
  for (const Graph& g : dataset) {
    std::optional<Graph> q = ExtractConnectedSubgraph(g, 4, rng);
    if (!q.has_value()) continue;
    const std::optional<Embedding> embedding = FindEmbedding(*q, g);
    ASSERT_TRUE(embedding.has_value());
    for (int depth = 1; depth <= 3; ++depth) {
      for (size_t i = 0; i < embedding->query_order.size(); ++i) {
        EXPECT_TRUE(BranchCompatible(*q, embedding->query_order[i], g,
                                     embedding->mapping[i], depth));
      }
      EXPECT_TRUE(BranchCompatibleFilter(*q, g, depth));
    }
    ++checked;
  }
  EXPECT_GT(checked, 5);
}

TEST(BranchCompatibilityTest, LabelMismatchIsIncompatible) {
  const Graph a = Path({1, 2});
  const Graph b = Path({2, 2});
  EXPECT_FALSE(BranchCompatible(a, 0, b, 0, 2));
}

TEST(BranchCompatibilityTest, MissingBranchDetected) {
  // Query vertex has two distinct-label neighbors; data vertex only one.
  Graph q;
  q.AddVertex(1);
  q.AddVertex(2);
  q.AddVertex(3);
  EXPECT_TRUE(q.AddEdge(0, 1, 0));
  EXPECT_TRUE(q.AddEdge(0, 2, 0));
  const Graph g = Path({2, 1});  // Vertex 1 has label 1, one neighbor.
  EXPECT_FALSE(BranchCompatible(q, 0, g, 1, 2));
}

}  // namespace
}  // namespace gsps
