// Edge-case and robustness tests that cut across modules: empty workloads,
// vertex-id reuse, deep/degenerate structures, and parser robustness
// against arbitrary input.

#include <gtest/gtest.h>

#include "gsps/common/random.h"
#include "gsps/engine/continuous_query_engine.h"
#include "gsps/graph/graph_io.h"
#include "gsps/graph/stream_io.h"
#include "gsps/nnt/nnt_set.h"

namespace gsps {
namespace {

TEST(EngineEdgeCasesTest, NoQueries) {
  ContinuousQueryEngine engine(EngineOptions{});
  Graph start;
  start.AddVertex(0);
  engine.AddStream(start);
  engine.Start();
  EXPECT_TRUE(engine.CandidatesForStream(0).empty());
  EXPECT_TRUE(engine.AllCandidatePairs().empty());
}

TEST(EngineEdgeCasesTest, NoStreams) {
  ContinuousQueryEngine engine(EngineOptions{});
  Graph q;
  q.AddVertex(0);
  engine.AddQuery(q);
  engine.Start();
  EXPECT_TRUE(engine.AllCandidatePairs().empty());
}

TEST(EngineEdgeCasesTest, EmptyStartGraph) {
  ContinuousQueryEngine engine(EngineOptions{});
  Graph q;
  q.AddVertex(3);
  engine.AddQuery(q);
  engine.AddStream(Graph());
  engine.Start();
  EXPECT_TRUE(engine.CandidatesForStream(0).empty());
  // The first vertices arrive through an insertion.
  GraphChange change;
  change.ops.push_back(EdgeOp::Insert(0, 1, 0, 3, 4));
  engine.ApplyChange(0, change);
  EXPECT_EQ(engine.CandidatesForStream(0), std::vector<int>{0});
}

TEST(EngineEdgeCasesTest, SingleVertexQueryNeedsMatchingLabelSomewhereOnly) {
  // A single-vertex query has an empty NPV: any non-empty stream covers it
  // (labels are not checked for degree-0 query vertices — a documented
  // source of false positives, resolved by VerifyCandidate).
  ContinuousQueryEngine engine(EngineOptions{});
  Graph q;
  q.AddVertex(3);
  engine.AddQuery(q);
  Graph start;
  start.AddVertex(9);
  engine.AddStream(start);
  engine.Start();
  EXPECT_EQ(engine.CandidatesForStream(0), std::vector<int>{0});
  EXPECT_FALSE(engine.VerifyCandidate(0, 0));
}

TEST(EngineEdgeCasesTest, RepeatedChangesOfSameEdgeWithinBatch) {
  ContinuousQueryEngine engine(EngineOptions{});
  Graph q;
  q.AddVertex(0);
  q.AddVertex(0);
  ASSERT_TRUE(q.AddEdge(0, 1, 0));
  engine.AddQuery(q);
  Graph start;
  start.AddVertex(0);
  start.AddVertex(0);
  ASSERT_TRUE(start.AddEdge(0, 1, 0));
  engine.AddStream(start);
  engine.Start();
  // Delete then reinsert the same edge in one batch; deletions run first.
  GraphChange change;
  change.ops.push_back(EdgeOp::Delete(0, 1));
  change.ops.push_back(EdgeOp::Insert(0, 1, 0, 0, 0));
  change.ops.push_back(EdgeOp::Insert(0, 1, 0, 0, 0));  // Duplicate: no-op.
  engine.ApplyChange(0, change);
  EXPECT_EQ(engine.CandidatesForStream(0), std::vector<int>{0});
  EXPECT_EQ(engine.StreamGraph(0).NumEdges(), 1);
}

TEST(GraphEdgeCasesTest, VertexIdReuseAfterRemoval) {
  Graph g;
  const VertexId a = g.AddVertex(1);
  const VertexId b = g.AddVertex(2);
  ASSERT_TRUE(g.AddEdge(a, b, 0));
  ASSERT_TRUE(g.RemoveVertex(a));
  // The slot can be revived with a different label via EnsureVertex.
  EXPECT_TRUE(g.EnsureVertex(a, 7));
  EXPECT_EQ(g.GetVertexLabel(a), 7);
  EXPECT_EQ(g.Degree(a), 0);
  EXPECT_TRUE(g.AddEdge(a, b, 1));
}

TEST(NntEdgeCasesTest, DepthOneCountsOnlyDirectNeighbors) {
  Graph g;
  g.AddVertex(0);
  g.AddVertex(1);
  g.AddVertex(2);
  ASSERT_TRUE(g.AddEdge(0, 1, 0));
  ASSERT_TRUE(g.AddEdge(1, 2, 0));
  DimensionTable dims;
  NntSet nnts(1, &dims);
  nnts.Build(g);
  EXPECT_EQ(nnts.TreeOf(0)->NumAliveNodes(), 2);
  EXPECT_EQ(nnts.TreeOf(1)->NumAliveNodes(), 3);
  EXPECT_TRUE(nnts.Validate(g));
}

TEST(NntEdgeCasesTest, HighDepthOnSmallCycleTerminates) {
  // Depth far beyond the graph diameter: edge-simple paths exhaust.
  Graph g;
  for (int i = 0; i < 3; ++i) g.AddVertex(0);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(g.AddEdge(i, (i + 1) % 3, 0));
  DimensionTable dims;
  NntSet nnts(50, &dims);
  nnts.Build(g);
  // Each root: 2 + 2 + 2 nodes (lengths 1..3), nothing deeper.
  EXPECT_EQ(nnts.TreeOf(0)->NumAliveNodes(), 7);
  EXPECT_TRUE(nnts.Validate(g));
}

TEST(ParserRobustnessTest, RandomBytesNeverCrash) {
  Rng rng(20260706);
  const std::string alphabet = "vegt+-# 0123456789\n\t-";
  for (int trial = 0; trial < 300; ++trial) {
    std::string text;
    const int length = static_cast<int>(rng.UniformInt(0, 120));
    for (int i = 0; i < length; ++i) {
      text += alphabet[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(alphabet.size()) - 1))];
    }
    // Must not crash; may or may not parse.
    (void)ParseGraph(text);
    (void)ParseGraphs(text);
    (void)ParseStream(text);
  }
}

TEST(ParserRobustnessTest, TruncatedValidFilesNeverCrash) {
  Graph g;
  g.AddVertex(1);
  g.AddVertex(2);
  ASSERT_TRUE(g.AddEdge(0, 1, 3));
  GraphStream stream(g);
  GraphChange change;
  change.ops.push_back(EdgeOp::Insert(0, 2, 0, 1, 5));
  stream.AppendChange(change);
  const std::string full = FormatStream(stream);
  for (size_t cut = 0; cut <= full.size(); ++cut) {
    (void)ParseStream(full.substr(0, cut));
  }
}

}  // namespace
}  // namespace gsps
