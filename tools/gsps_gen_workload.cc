// gsps_gen_workload — writes a synthetic monitoring workload to disk in the
// text formats gsps_monitor consumes: a query file (graph_io.h dataset
// format) and one stream file (stream_io.h format).
//
//   gsps_gen_workload --out_queries=patterns.txt --out_stream=traffic.txt ...
//       [--kind=synthetic|reality] [--timestamps=100] [--seed=7]
//
// Exit status: 0 on success, 2 on usage/file errors.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "gsps/gen/reality_like.h"
#include "gsps/gen/stream_generator.h"
#include "gsps/graph/graph_io.h"
#include "gsps/graph/stream_io.h"

namespace {

using namespace gsps;

std::string GetFlag(int argc, char** argv, const std::string& name,
                    const std::string& default_value) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i]).substr(prefix.size());
    }
  }
  return default_value;
}

bool WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path);
  if (!out) return false;
  out << contents;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_queries = GetFlag(argc, argv, "out_queries", "");
  const std::string out_stream = GetFlag(argc, argv, "out_stream", "");
  if (out_queries.empty() || out_stream.empty()) {
    std::fprintf(stderr,
                 "usage: gsps_gen_workload --out_queries=FILE "
                 "--out_stream=FILE\n"
                 "        [--kind=synthetic|reality] [--timestamps=100] "
                 "[--seed=7]\n");
    return 2;
  }
  const std::string kind = GetFlag(argc, argv, "kind", "synthetic");
  const int timestamps =
      std::atoi(GetFlag(argc, argv, "timestamps", "100").c_str());
  const uint64_t seed =
      std::strtoull(GetFlag(argc, argv, "seed", "7").c_str(), nullptr, 10);

  StreamDataset dataset;
  if (kind == "synthetic") {
    SyntheticStreamParams params;
    params.num_pairs = 8;
    params.evolution.num_timestamps = timestamps;
    params.evolution.extra_pair_fraction = 6.2;
    params.seed = seed;
    dataset = MakeSyntheticStreams(params);
  } else if (kind == "reality") {
    RealityLikeParams params;
    params.num_streams = 1;
    params.num_queries = 8;
    params.num_timestamps = timestamps;
    params.seed = seed;
    dataset = MakeRealityLikeStreams(params);
  } else {
    std::fprintf(stderr, "unknown --kind=%s\n", kind.c_str());
    return 2;
  }

  if (!WriteFile(out_queries, FormatGraphs(dataset.queries))) {
    std::fprintf(stderr, "cannot write %s\n", out_queries.c_str());
    return 2;
  }
  if (!WriteFile(out_stream, FormatStream(dataset.streams.front()))) {
    std::fprintf(stderr, "cannot write %s\n", out_stream.c_str());
    return 2;
  }
  std::printf("wrote %zu queries to %s and a %d-timestamp stream to %s\n",
              dataset.queries.size(), out_queries.c_str(), timestamps,
              out_stream.c_str());
  return 0;
}
