// gsps_loadgen — open-loop ingest load generator for the engine core.
//
// Measures what the monitor's closed-loop replay cannot: end-to-end ingest
// latency under a fixed offered rate, queue wait included. The tool
// generates a synthetic stream workload (§V.B generator), encodes every
// stream into the GSPB binary delta format once, then replays the decoded
// binary batches through the bounded ingest queue into a live engine:
//
//   producer threads (open loop, --rate events/sec aggregate)
//     -> IngestQueue(--queue) with blocking backpressure
//       -> one consumer thread: PopBatch -> ParallelQueryEngine::ApplyChange
//
// Producers stamp each event with its *scheduled* send time (keep_stamp),
// so when the queue pushes back the measured latency includes the time the
// producer fell behind — the open-loop convention that exposes coordinated
// omission instead of hiding it. Each stream belongs to exactly one
// producer and the queue is FIFO, so per-stream batch order is preserved;
// the consumer verifies timestamps arrive gapless and in order per stream
// and fails loudly otherwise (zero dropped or reordered deltas).
//
// Latency lands in the shared obs histogram (gsps_ingest_e2e_micros) and a
// tool-owned copy that works in GSPS_OBS_DISABLED builds; the summary line
// reports p50/p95/p99 from the latter. --metrics=FILE|- exports the full
// Prometheus/JSON snapshot including the ingest counters.
//
//   gsps_loadgen [--streams=16] [--queries=4] [--timestamps=64] [--seed=7]
//       [--rate=0] [--producers=4] [--queue=1024] [--batch=64]
//       [--depth=3] [--join=dsc|nl|skyline] [--threads=1] [--join_every=0]
//       [--pipelined] [--lane=1024] [--probe_ms=10]
//       [--metrics=FILE|-] [--metrics_format=prom|json] [--quiet]
//
// --rate=0 replays as fast as the queue accepts. --join_every=N pulls the
// candidate set of a batch's stream every N applied batches, mixing join
// refreshes into the ingest path (single-consumer mode only).
//
// --pipelined swaps the consumer side for PipelinedQueryEngine: producers
// push into the engine's MPSC queue, the router fans events out to one
// SPSC lane per shard (--lane capacity each), and each shard worker
// applies its own streams' batches — multi-consumer ingest. While
// producers run, the main thread publishes a watermark-lag probe marker
// every --probe_ms milliseconds; these measure marker transit through the
// loaded queue and lanes (snapshot reads only happen at the final,
// quiescent epoch, so the probes need no data-completeness discipline).
// The order audit runs per lane via the shared IngestOrderAudit and the
// summary reports per-shard e2e latency plus p99 watermark lag.
//
// Exit status: 0 on success (and a clean order audit), 1 on a
// dropped/reordered delta, 2 on usage errors.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "gsps/common/flags.h"
#include "gsps/common/stopwatch.h"
#include "gsps/engine/ingest_audit.h"
#include "gsps/engine/ingest_queue.h"
#include "gsps/engine/parallel_query_engine.h"
#include "gsps/engine/pipelined_query_engine.h"
#include "gsps/gen/stream_generator.h"
#include "gsps/graph/delta_codec.h"
#include "gsps/graph/stream_io.h"
#include "gsps/obs/obs.h"
#include "gsps/obs/window.h"

namespace {

using namespace gsps;

int Usage() {
  std::fprintf(
      stderr,
      "usage: gsps_loadgen [--streams=16] [--queries=4] [--timestamps=64]\n"
      "        [--seed=7] [--rate=0] [--producers=4] [--queue=1024]\n"
      "        [--batch=64] [--depth=3] [--join=dsc|nl|skyline] [--threads=1]\n"
      "        [--join_every=0] [--pipelined] [--lane=1024] [--probe_ms=10]\n"
      "        [--metrics=FILE|-] [--metrics_format=prom|json]\n"
      "        [--quiet]\n");
  return 2;
}

bool WriteWholeFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return true;
}

bool WriteMetricsSnapshot(const std::string& destination, bool json) {
  const obs::MetricSink snapshot = obs::MetricsRegistry::Global().Snapshot();
  const std::string text =
      json ? obs::ToMetricsJson(snapshot) : obs::ToPrometheusText(snapshot);
  if (destination == "-") {
    std::fwrite(text.data(), 1, text.size(), stdout);
    if (json) std::fputc('\n', stdout);
    return true;
  }
  return WriteWholeFile(destination, text);
}

// One producer's replay plan: the decoded binary batches of the streams it
// owns, interleaved round-robin by timestamp so its streams advance
// together instead of one stream at a time.
struct ProducerPlan {
  std::vector<IngestEvent> events;  // In push order.
  int64_t edge_ops = 0;
};

ProducerPlan PlanProducer(const std::vector<GraphStream>& streams,
                          int producer, int num_producers) {
  ProducerPlan plan;
  int horizon = 0;
  for (size_t i = static_cast<size_t>(producer); i < streams.size();
       i += static_cast<size_t>(num_producers)) {
    horizon = std::max(horizon, streams[i].NumTimestamps());
  }
  for (int t = 1; t < horizon; ++t) {
    for (size_t i = static_cast<size_t>(producer); i < streams.size();
         i += static_cast<size_t>(num_producers)) {
      if (t >= streams[i].NumTimestamps()) continue;
      IngestEvent event;
      event.stream = static_cast<int32_t>(i);
      event.timestamp = t;
      event.change = streams[i].ChangeAt(t);
      plan.edge_ops += static_cast<int64_t>(event.change.ops.size());
      plan.events.push_back(std::move(event));
    }
  }
  return plan;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const int num_streams = flags.GetInt("streams", 16);
  const int num_queries = flags.GetInt("queries", 4);
  const int timestamps = flags.GetInt("timestamps", 64);
  const long long seed = flags.GetInt64("seed", 7);
  const double rate = flags.GetDouble("rate", 0.0);
  int num_producers = flags.GetInt("producers", 4);
  const int queue_capacity = flags.GetInt("queue", 1024);
  const int batch_size = flags.GetInt("batch", 64);
  const int depth = flags.GetInt("depth", 3);
  const std::string join = flags.GetString("join", "dsc");
  const int threads = flags.GetInt("threads", 1);
  const int join_every = flags.GetInt("join_every", 0);
  const bool pipelined = flags.GetBool("pipelined");
  const int lane_capacity = flags.GetInt("lane", 1024);
  const int probe_ms = flags.GetInt("probe_ms", 10);
  const std::string metrics_path = flags.GetString("metrics", "");
  const std::string metrics_format = flags.GetString("metrics_format", "prom");
  const bool quiet = flags.GetBool("quiet");
  if (!flags.UnrecognizedArgs().empty()) {
    std::fprintf(stderr, "gsps_loadgen: %s\n", flags.ErrorMessage().c_str());
    return Usage();
  }
  if (num_streams < 1 || num_queries < 1 || timestamps < 2 || rate < 0 ||
      num_producers < 1 || queue_capacity < 1 || batch_size < 1 ||
      depth < 0 || join_every < 0 || lane_capacity < 1 || probe_ms < 1) {
    return Usage();
  }
  if (metrics_format != "prom" && metrics_format != "json") return Usage();
  num_producers = std::min(num_producers, num_streams);

  EngineOptions engine_options;
  engine_options.nnt_depth = depth;
  if (join == "dsc") {
    engine_options.join_kind = JoinKind::kDominatedSetCover;
  } else if (join == "nl") {
    engine_options.join_kind = JoinKind::kNestedLoop;
  } else if (join == "skyline") {
    engine_options.join_kind = JoinKind::kSkylineEarlyStop;
  } else {
    return Usage();
  }

  // Generate the workload, then force every stream through the binary
  // codec: what the engine and the producers see from here on is the
  // decoded form of the GSPB blobs, never the generator's objects — the
  // replay exercises the same bytes a network ingest would.
  SyntheticStreamParams params;
  params.num_pairs = num_streams;
  params.evolution.num_timestamps = timestamps;
  params.seed = static_cast<uint64_t>(seed);
  const StreamDataset dataset = MakeSyntheticStreams(params);

  size_t binary_bytes = 0, text_bytes = 0;
  std::vector<GraphStream> streams;
  streams.reserve(dataset.streams.size());
  for (size_t i = 0; i < dataset.streams.size(); ++i) {
    const std::string blob = EncodeStream(dataset.streams[i]);
    binary_bytes += blob.size();
    text_bytes += FormatStream(dataset.streams[i]).size();
    IoError error;
    std::optional<GraphStream> decoded = DecodeStream(blob, &error);
    if (!decoded) {
      std::fprintf(stderr, "gsps_loadgen: stream %zu failed to decode: %s\n",
                   i, error.ToString().c_str());
      return 2;
    }
    streams.push_back(*std::move(decoded));
  }

  obs::MetricSink root_sink;
  obs::ScopedObsContext obs_scope(&root_sink, nullptr);

  // Pre-plan every producer's events so the replay loop does no generation
  // work; the open loop measures queue + engine, not planning.
  std::vector<ProducerPlan> plans;
  plans.reserve(static_cast<size_t>(num_producers));
  int64_t total_edge_ops = 0, total_batches = 0;
  for (int p = 0; p < num_producers; ++p) {
    plans.push_back(PlanProducer(streams, p, num_producers));
    total_edge_ops += plans.back().edge_ops;
    total_batches += static_cast<int64_t>(plans.back().events.size());
  }
  const int registered_queries =
      std::min(num_queries, static_cast<int>(dataset.queries.size()));

  // Per-producer slice of the aggregate rate, in events (batches) per
  // second; edge ops per batch average out across producers.
  const double batches_per_op =
      total_edge_ops > 0
          ? static_cast<double>(total_batches) / static_cast<double>(total_edge_ops)
          : 1.0;
  const double per_producer_batch_rate =
      rate > 0 ? rate * batches_per_op / num_producers : 0.0;

  if (pipelined) {
    PipelinedEngineOptions pipe_options;
    pipe_options.engine = engine_options;
    pipe_options.num_threads = threads;
    pipe_options.ingest_capacity = static_cast<size_t>(queue_capacity);
    pipe_options.lane_capacity = static_cast<size_t>(lane_capacity);
    PipelinedQueryEngine engine(pipe_options);
    for (int q = 0; q < registered_queries; ++q) {
      engine.AddQuery(dataset.queries[static_cast<size_t>(q)]);
    }
    for (const GraphStream& stream : streams) {
      engine.AddStream(stream.StartGraph());
    }
    engine.Start();

    Stopwatch watch;
    const int64_t start_micros = obs::MonotonicMicros();
    std::atomic<int> producers_done{0};
    std::vector<std::thread> producers;
    producers.reserve(static_cast<size_t>(num_producers));
    for (int p = 0; p < num_producers; ++p) {
      producers.emplace_back([&, p] {
        const ProducerPlan& plan = plans[static_cast<size_t>(p)];
        int64_t sent = 0;
        for (const IngestEvent& planned : plan.events) {
          IngestEvent event = planned;  // Keep the plan intact.
          if (per_producer_batch_rate > 0) {
            const int64_t scheduled =
                start_micros + static_cast<int64_t>(
                                   static_cast<double>(sent) * 1e6 /
                                   per_producer_batch_rate);
            while (obs::MonotonicMicros() < scheduled) {
              std::this_thread::sleep_for(std::chrono::microseconds(50));
            }
            event.enqueue_micros = scheduled;
            event.keep_stamp = true;
          }
          if (!engine.Ingest(std::move(event))) break;  // Shut down early.
          ++sent;
        }
        producers_done.fetch_add(1);
      });
    }

    // Watermark-lag probes while the load runs: marker timestamps here are
    // probe sequence numbers, not data timestamps — nothing reads the
    // intermediate snapshots, only the marker's transit time matters.
    int32_t probe = 0;
    while (producers_done.load() < num_producers) {
      std::this_thread::sleep_for(std::chrono::milliseconds(probe_ms));
      engine.AdvanceEpoch(++probe);
    }
    for (std::thread& t : producers) t.join();
    // Final epoch: published after every producer push, so the snapshot it
    // closes covers the complete workload.
    engine.AdvanceEpoch(++probe);
    const double elapsed_ms = watch.ElapsedMillis();
    const size_t candidate_pairs = engine.AllCandidatePairs().size();
    const IngestQueueStats queue_stats = engine.ingest_queue().Stats();
    engine.Shutdown();  // Folds queue + router counters into the registry.

    obs::HistogramData latency, lag;
    int64_t applied_events = 0, applied_batches = 0, coalesced = 0;
    int64_t order_violations = 0, lane_depth_high_water = 0;
    for (int s = 0; s < engine.num_shards(); ++s) {
      const PipelinedQueryEngine::LaneReport report = engine.ReportLane(s);
      latency.MergeFrom(report.e2e_micros);
      lag.MergeFrom(report.watermark_lag_micros);
      applied_events += report.applied_events;
      applied_batches += report.applied_batches;
      coalesced += report.coalesced_events;
      order_violations += report.order_violations;
      lane_depth_high_water =
          std::max(lane_depth_high_water, report.lane.depth_high_water);
    }
    obs::MetricsRegistry::Global().MergeAndReset(root_sink);

    if (applied_events != total_batches ||
        queue_stats.accepted != queue_stats.delivered) {
      std::fprintf(stderr,
                   "gsps_loadgen: LOST EVENTS pushed=%lld applied=%lld "
                   "queue accepted=%lld delivered=%lld\n",
                   static_cast<long long>(total_batches),
                   static_cast<long long>(applied_events),
                   static_cast<long long>(queue_stats.accepted),
                   static_cast<long long>(queue_stats.delivered));
      return 1;
    }
    if (order_violations > 0) {
      std::fprintf(stderr, "gsps_loadgen: %lld REORDERED deltas\n",
                   static_cast<long long>(order_violations));
      return 1;
    }

    const double achieved =
        elapsed_ms > 0
            ? static_cast<double>(total_edge_ops) * 1000.0 / elapsed_ms
            : 0.0;
    if (!quiet) {
      std::printf(
          "gsps_loadgen: %lld edge events in %lld batches across %d streams "
          "(%d producers -> %d shard lanes, queue=%d lane=%d) in %.1f ms\n",
          static_cast<long long>(total_edge_ops),
          static_cast<long long>(applied_events), num_streams, num_producers,
          engine.num_shards(), queue_capacity, lane_capacity, elapsed_ms);
      std::printf(
          "gsps_loadgen: rate=%.0f events/s (target %s) coalesced=%lld "
          "applied_batches=%lld producer_waits=%lld lane_depth=%lld\n",
          achieved, rate > 0 ? std::to_string(rate).c_str() : "unbounded",
          static_cast<long long>(coalesced),
          static_cast<long long>(applied_batches),
          static_cast<long long>(queue_stats.producer_waits),
          static_cast<long long>(lane_depth_high_water));
      std::printf(
          "gsps_loadgen: watermark lag p50=%.0fus p99=%.0fus (%lld probes)\n",
          obs::HistogramQuantile(lag, 0.5), obs::HistogramQuantile(lag, 0.99),
          static_cast<long long>(lag.count));
    }
    std::printf(
        "gsps_loadgen: e2e latency p50=%.0fus p95=%.0fus p99=%.0fus "
        "(%lld samples) candidates=%zu dropped=0 reordered=0\n",
        obs::HistogramQuantile(latency, 0.5),
        obs::HistogramQuantile(latency, 0.95),
        obs::HistogramQuantile(latency, 0.99),
        static_cast<long long>(latency.count), candidate_pairs);

    if (!metrics_path.empty() &&
        !WriteMetricsSnapshot(metrics_path, metrics_format == "json")) {
      std::fprintf(stderr, "cannot write %s\n", metrics_path.c_str());
      return 2;
    }
    return 0;
  }

  ParallelEngineOptions parallel_options;
  parallel_options.engine = engine_options;
  parallel_options.num_threads = threads;
  ParallelQueryEngine engine(parallel_options);
  for (int q = 0; q < registered_queries; ++q) {
    engine.AddQuery(dataset.queries[static_cast<size_t>(q)]);
  }
  for (const GraphStream& stream : streams) {
    engine.AddStream(stream.StartGraph());
  }
  engine.Start();

  IngestQueue queue(static_cast<size_t>(queue_capacity));
  std::atomic<int> producers_done{0};
  Stopwatch watch;
  const int64_t start_micros = obs::MonotonicMicros();
  std::vector<std::thread> producers;
  producers.reserve(static_cast<size_t>(num_producers));
  for (int p = 0; p < num_producers; ++p) {
    producers.emplace_back([&, p] {
      const ProducerPlan& plan = plans[static_cast<size_t>(p)];
      int64_t sent = 0;
      for (const IngestEvent& planned : plan.events) {
        IngestEvent event = planned;  // Keep the plan intact.
        if (per_producer_batch_rate > 0) {
          const int64_t scheduled =
              start_micros + static_cast<int64_t>(
                                 static_cast<double>(sent) * 1e6 /
                                 per_producer_batch_rate);
          // Open loop: wait until the scheduled send time, but stamp the
          // event with it even when we are late — latency then charges the
          // backlog to the system under test, not to the clock.
          while (obs::MonotonicMicros() < scheduled) {
            std::this_thread::sleep_for(std::chrono::microseconds(50));
          }
          event.enqueue_micros = scheduled;
          event.keep_stamp = true;
        }
        if (!queue.Push(std::move(event))) break;  // Closed early.
        ++sent;
      }
      // The last producer out closes the queue; accepted events still
      // drain, so the consumer sees everything that was pushed.
      if (producers_done.fetch_add(1) + 1 == num_producers) queue.Close();
    });
  }

  // Consumer: the main thread. Applies each batch to its stream and audits
  // the order contract: per stream, timestamps must arrive 1, 2, 3, ...
  // with no gap (drop) or inversion (reorder).
  IngestOrderAudit audit(num_streams);
  obs::HistogramData latency;
  int64_t applied_batches = 0, applied_ops = 0;
  std::vector<IngestEvent> batch;
  while (queue.PopBatch(&batch, static_cast<size_t>(batch_size)) > 0) {
    for (IngestEvent& event : batch) {
      audit.ObserveInOrder(event.stream, event.timestamp);
      engine.ApplyChange(event.stream, event.change);
      const int64_t e2e = obs::MonotonicMicros() - event.enqueue_micros;
      latency.Observe(e2e);
      GSPS_OBS_OBSERVE(Hist::kIngestE2eMicros, e2e);
      ++applied_batches;
      applied_ops += static_cast<int64_t>(event.change.ops.size());
      if (join_every > 0 && applied_batches % join_every == 0) {
        engine.CandidatesForStream(event.stream);
      }
    }
  }
  for (std::thread& t : producers) t.join();
  const double elapsed_ms = watch.ElapsedMillis();

  // Final join over everything ingested, then fold the queue's counters
  // into the obs snapshot the exporters serialize.
  const size_t candidate_pairs = engine.AllCandidatePairs().size();
  const IngestQueueStats stats = queue.Stats();
  if constexpr (obs::kEnabled) {
    root_sink.Add(obs::Counter::kIngestAccepted, stats.accepted);
    root_sink.Add(obs::Counter::kIngestDelivered, stats.delivered);
    root_sink.Add(obs::Counter::kIngestProducerWaits, stats.producer_waits);
    root_sink.Set(obs::Gauge::kIngestQueueDepth, stats.depth_high_water);
  }
  obs::MetricsRegistry::Global().MergeAndReset(root_sink);

  if (stats.accepted != stats.delivered ||
      stats.delivered != applied_batches) {
    std::fprintf(stderr,
                 "gsps_loadgen: LOST EVENTS accepted=%lld delivered=%lld "
                 "applied=%lld\n",
                 static_cast<long long>(stats.accepted),
                 static_cast<long long>(stats.delivered),
                 static_cast<long long>(applied_batches));
    return 1;
  }
  if (audit.violations() > 0) {
    std::fprintf(stderr, "gsps_loadgen: %lld REORDERED deltas\n",
                 static_cast<long long>(audit.violations()));
    return 1;
  }

  const double achieved =
      elapsed_ms > 0 ? static_cast<double>(applied_ops) * 1000.0 / elapsed_ms
                     : 0.0;
  if (!quiet) {
    std::printf(
        "gsps_loadgen: %lld edge events in %lld batches across %d streams "
        "(%d producers, queue=%d) in %.1f ms\n",
        static_cast<long long>(applied_ops),
        static_cast<long long>(applied_batches), num_streams, num_producers,
        queue_capacity, elapsed_ms);
    std::printf(
        "gsps_loadgen: rate=%.0f events/s (target %s) producer_waits=%lld "
        "depth_high_water=%lld binary=%zuB text=%zuB (%.1fx)\n",
        achieved, rate > 0 ? std::to_string(rate).c_str() : "unbounded",
        static_cast<long long>(stats.producer_waits),
        static_cast<long long>(stats.depth_high_water), binary_bytes,
        text_bytes,
        binary_bytes > 0
            ? static_cast<double>(text_bytes) / static_cast<double>(binary_bytes)
            : 0.0);
  }
  std::printf(
      "gsps_loadgen: e2e latency p50=%.0fus p95=%.0fus p99=%.0fus "
      "(%lld samples) candidates=%zu dropped=0 reordered=0\n",
      obs::HistogramQuantile(latency, 0.5),
      obs::HistogramQuantile(latency, 0.95),
      obs::HistogramQuantile(latency, 0.99),
      static_cast<long long>(latency.count), candidate_pairs);

  if (!metrics_path.empty() &&
      !WriteMetricsSnapshot(metrics_path, metrics_format == "json")) {
    std::fprintf(stderr, "cannot write %s\n", metrics_path.c_str());
    return 2;
  }
  return 0;
}
