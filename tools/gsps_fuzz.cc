// gsps_fuzz — differential fuzzing of the continuous pattern-search stack
// against its invariant oracles (no false negatives vs exact VF2 across all
// join strategies and baselines, incremental-NNT == from-scratch rebuild,
// parallel == sequential engine output, serialization round-trips).
//
// Fuzz mode (default): run `--iterations` randomized cases derived from
// `--seed`. On the first oracle violation the case is auto-minimized and
// written as a replay file; rerunning that file reproduces the failure
// exactly. Output is deterministic for a given flag set — identical seeds
// produce identical logs.
//
//   gsps_fuzz --seed=1 --iterations=100 [--depth=0] [--max_streams=3]
//       [--max_queries=4] [--max_timestamps=8] [--max_churn_ops=5]
//       [--out=FILE] [--minimize_attempts=4000] [--no-parallel]
//       [--no-baselines] [--no-incremental] [--no-churn] [--no-codec]
//       [--no-pipelined] [--quiet]
//
// Replay mode: re-run the oracle set over one committed replay file.
//
//   gsps_fuzz --replay=FILE [--quiet]
//
// Corpus tooling: write the generated (unfuzzed) case of one iteration.
//
//   gsps_fuzz --emit=FILE --seed=S [--iteration=K]
//
// Exit status: 0 all oracles hold; 1 an oracle violation was found (fuzz
// mode writes the minimized replay first); 2 usage or file errors.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "gsps/common/flags.h"
#include "gsps/fuzz/fuzzer.h"
#include "gsps/fuzz/replay.h"

namespace {

using namespace gsps;

int Usage() {
  std::fprintf(
      stderr,
      "usage: gsps_fuzz --seed=1 --iterations=100 [--depth=0] [--out=FILE]\n"
      "           [--max_streams=3] [--max_queries=4] [--max_timestamps=8]\n"
      "           [--max_churn_ops=5] [--minimize_attempts=4000]\n"
      "           [--no-parallel] [--no-baselines] [--no-incremental]\n"
      "           [--no-churn] [--no-codec] [--no-pipelined] [--quiet]\n"
      "       gsps_fuzz --replay=FILE [--quiet]\n"
      "       gsps_fuzz --emit=FILE --seed=S [--iteration=K]\n");
  return 2;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) return false;
  out << content;
  return out.good();
}

int RunReplayMode(const std::string& path, const OracleOptions& oracles,
                  bool quiet) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  IoError error;
  const std::optional<FuzzCase> c = ParseReplay(buffer.str(), &error);
  if (!c) {
    std::fprintf(stderr, "malformed replay %s: %s\n", path.c_str(),
                 error.ToString().c_str());
    return 2;
  }
  const std::optional<std::string> failure = RunOracles(*c, oracles);
  if (failure) {
    std::printf("replay %s FAIL (%s): %s\n", path.c_str(),
                DescribeCase(*c).c_str(), failure->c_str());
    return 1;
  }
  if (!quiet) {
    std::printf("replay %s ok (%s)\n", path.c_str(),
                DescribeCase(*c).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  FuzzOptions options;
  options.seed = static_cast<uint64_t>(flags.GetInt64("seed", 1));
  options.iterations = flags.GetInt("iterations", 100);
  options.gen.nnt_depth = flags.GetInt("depth", 0);
  options.gen.max_streams = flags.GetInt("max_streams", 3);
  options.gen.max_queries = flags.GetInt("max_queries", 4);
  options.gen.max_timestamps = flags.GetInt("max_timestamps", 8);
  options.gen.max_churn_ops = flags.GetInt("max_churn_ops", 5);
  options.minimize_attempts = flags.GetInt("minimize_attempts", 4000);
  options.oracles.check_parallel = !flags.GetBool("no-parallel");
  options.oracles.check_baselines = !flags.GetBool("no-baselines");
  options.oracles.check_incremental = !flags.GetBool("no-incremental");
  options.oracles.check_codec = !flags.GetBool("no-codec");
  options.oracles.check_pipelined = !flags.GetBool("no-pipelined");
  if (flags.GetBool("no-churn")) {
    options.oracles.check_churn = false;
    options.gen.max_churn_ops = 0;  // Generate churn-free cases too.
  }
  const bool quiet = flags.GetBool("quiet");
  options.verbose = !quiet;
  const std::string replay_path = flags.GetString("replay", "");
  const std::string emit_path = flags.GetString("emit", "");
  const int iteration = flags.GetInt("iteration", 0);
  const std::string out_flag = flags.GetString("out", "");
  if (!flags.UnrecognizedArgs().empty()) {
    std::fprintf(stderr, "gsps_fuzz: %s\n", flags.ErrorMessage().c_str());
    return Usage();
  }

  if (options.iterations <= 0 || options.gen.max_streams <= 0 ||
      options.gen.max_queries <= 0 || options.gen.max_timestamps <= 0 ||
      options.gen.nnt_depth < 0 || options.gen.max_churn_ops < 0) {
    return Usage();
  }

  if (!replay_path.empty()) {
    return RunReplayMode(replay_path, options.oracles, quiet);
  }

  if (!emit_path.empty()) {
    Rng rng(CaseSeed(options.seed, iteration));
    const FuzzCase c = GenerateCase(options.gen, rng);
    if (!WriteFile(emit_path, FormatReplay(c))) {
      std::fprintf(stderr, "cannot write %s\n", emit_path.c_str());
      return 2;
    }
    std::printf("emitted %s (%s)\n", emit_path.c_str(),
                DescribeCase(c).c_str());
    return 0;
  }

  const FuzzOutcome outcome =
      RunFuzz(options, [](const std::string& line) {
        std::printf("%s\n", line.c_str());
        std::fflush(stdout);
      });
  if (outcome.ok) return 0;

  std::string out_path = out_flag;
  if (out_path.empty()) {
    out_path = "gsps_fuzz_seed" + std::to_string(options.seed) + "_iter" +
               std::to_string(outcome.failing_iteration) + ".replay";
  }
  std::string replay = "# gsps_fuzz minimized replay\n";
  replay += "# seed=" + std::to_string(options.seed) +
            " iteration=" + std::to_string(outcome.failing_iteration) +
            " case_seed=" + std::to_string(outcome.case_seed) + "\n";
  replay += "# failure: " + outcome.minimized_failure + "\n";
  replay += FormatReplay(outcome.minimized);
  if (!WriteFile(out_path, replay)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 2;
  }
  std::printf("replay written to %s\n", out_path.c_str());
  return 1;
}
