// gsps_monitor — continuous subgraph pattern monitoring over recorded
// graph streams.
//
// Reads a query file (graphs in the "g/v/e" dataset format of graph_io.h)
// and one or more stream files (the "v/e/t/+/-" format of stream_io.h,
// comma-separated), replays the streams through the engine, and prints the
// possibly-matching queries at every timestamp. With --verify each
// candidate is confirmed by the exact checker before being printed; with
// --events only the transitions (patterns that start or stop matching) are
// printed instead of the full candidate set. --threads=N shards the
// streams over N workers (0 = one per hardware thread, 1 = the sequential
// engine; the reported candidates are identical either way).
//
// Observability: --metrics=FILE (or "-" for stdout) dumps the engine's
// counter/gauge/histogram snapshot, by default once at the end;
// --metrics_every=N rewrites it every N timestamps. --metrics_format
// selects Prometheus text exposition (default) or JSON. --trace=FILE
// writes a Chrome trace_event JSON of the replay (one timeline row per
// shard plus the driver) loadable in about://tracing or Perfetto.
// --pipelined replays through the barrier-free PipelinedQueryEngine
// instead: each timestamp's batches are pushed as ingest events, the epoch
// watermark is advanced to t, and the (byte-identical) candidate snapshots
// are read back — the closed-loop driver for the pipelined execution mode.
// --lane=N sizes the per-shard SPSC lanes.
// --stats_every=N prints a one-line heartbeat to stderr every N
// timestamps (rates and tail latency over the window since the previous
// flush). --flight_recorder=FILE arms the in-process flight recorder:
// SIGUSR1 (or a crash) dumps the recent-span ring mid-replay, and a final
// dump is written after the last metrics flush so the dump's cumulative
// section matches the final --metrics snapshot.
//
//   gsps_monitor --queries=patterns.txt --stream=traffic.txt[,more.txt...]
//       [--depth=3] [--join=dsc|nl|skyline] [--threads=1] [--verify]
//       [--pipelined] [--lane=1024]
//       [--events] [--quiet] [--metrics=FILE|-] [--metrics_every=N]
//       [--metrics_format=prom|json] [--trace=FILE] [--stats_every=N]
//       [--flight_recorder=FILE]
//
// Unrecognized flags are an error. Exit status: 0 on success, 2 on
// usage/file errors.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "gsps/common/flags.h"
#include "gsps/common/stopwatch.h"
#include "gsps/engine/candidate_tracker.h"
#include "gsps/engine/parallel_query_engine.h"
#include "gsps/engine/pipelined_query_engine.h"
#include "gsps/graph/graph_io.h"
#include "gsps/graph/stream_io.h"
#include "gsps/obs/flight_recorder.h"
#include "gsps/obs/obs.h"
#include "gsps/obs/window.h"

namespace {

using namespace gsps;

std::optional<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int Usage() {
  std::fprintf(stderr,
               "usage: gsps_monitor --queries=FILE --stream=FILE[,FILE...]\n"
               "        [--depth=3] [--join=dsc|nl|skyline] [--threads=1] "
               "[--verify] [--events] [--quiet]\n"
               "        [--pipelined] [--lane=1024]\n"
               "        [--metrics=FILE|-] [--metrics_every=N] "
               "[--metrics_format=prom|json] [--trace=FILE]\n"
               "        [--stats_every=N] [--flight_recorder=FILE]\n");
  return 2;
}

std::vector<std::string> SplitCommas(const std::string& spec) {
  std::vector<std::string> parts;
  std::string token;
  for (const char c : spec + ",") {
    if (c == ',') {
      if (!token.empty()) parts.push_back(token);
      token.clear();
    } else {
      token.push_back(c);
    }
  }
  return parts;
}

bool WriteWholeFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return true;
}

// Folds the driver thread's sink into the registry and closes the open
// telemetry window. Each flush cadence tick calls this exactly once, so
// the metrics rewrite and the stderr heartbeat report the same window.
obs::WindowSnapshot CloseWindow(obs::MetricSink& root_sink) {
  obs::MetricsRegistry::Global().MergeAndReset(root_sink);
  return obs::WindowedTelemetry::Global().Advance();
}

// Rewrites the metrics destination with a fresh snapshot (cumulative since
// process start; the serializers append the latest closed window's rates).
bool WriteMetricsSnapshot(const std::string& destination, bool json) {
  const obs::MetricSink snapshot = obs::MetricsRegistry::Global().Snapshot();
  const std::string text =
      json ? obs::ToMetricsJson(snapshot) : obs::ToPrometheusText(snapshot);
  if (destination == "-") {
    std::fwrite(text.data(), 1, text.size(), stdout);
    if (json) std::fputc('\n', stdout);
    return true;
  }
  return WriteWholeFile(destination, text);
}

// One-line stderr heartbeat over the just-closed window.
void PrintHeartbeat(int t, const obs::WindowSnapshot& window,
                    int64_t total_candidates) {
  const double events =
      obs::RatePerSec(window, obs::Counter::kNntInsertEdges) +
      obs::RatePerSec(window, obs::Counter::kNntDeleteEdges);
  const double tests =
      obs::RatePerSec(window, obs::Counter::kJoinDominanceTests);
  const double refresh_p95 = obs::HistogramQuantile(
      window.delta.histogram(obs::Hist::kStageJoinRefreshMicros), 0.95);
  // Gauges only appear in the window whose merge carried them, so the
  // steady queries_active reading comes from the cumulative aggregate.
  const int64_t queries_active =
      obs::MetricsRegistry::Global().Snapshot().GaugeValue(
          obs::Gauge::kQueriesActive);
  std::fprintf(stderr,
               "gsps_monitor: t=%d window=%lld events/s=%.1f "
               "dominance_tests/s=%.1f join_refresh_p95=%.1fus "
               "queries_active=%lld candidates=%lld\n",
               t, static_cast<long long>(window.seq), events, tests,
               refresh_p95, static_cast<long long>(queries_active),
               static_cast<long long>(total_candidates));
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const std::string queries_path = flags.GetString("queries", "");
  const std::string stream_path = flags.GetString("stream", "");
  const int depth = flags.GetInt("depth", 3);
  const std::string join = flags.GetString("join", "dsc");
  const int threads = flags.GetInt("threads", 1);
  const bool verify = flags.GetBool("verify");
  const bool pipelined = flags.GetBool("pipelined");
  const int lane_capacity = flags.GetInt("lane", 1024);
  const bool events = flags.GetBool("events");
  const bool quiet = flags.GetBool("quiet");
  const std::string metrics_path = flags.GetString("metrics", "");
  const int metrics_every = flags.GetInt("metrics_every", 0);
  const std::string metrics_format = flags.GetString("metrics_format", "prom");
  const std::string trace_path = flags.GetString("trace", "");
  const int stats_every = flags.GetInt("stats_every", 0);
  const std::string flight_path = flags.GetString("flight_recorder", "");
  if (!flags.UnrecognizedArgs().empty()) {
    std::fprintf(stderr, "gsps_monitor: %s\n", flags.ErrorMessage().c_str());
    return Usage();
  }
  if (queries_path.empty() || stream_path.empty()) return Usage();
  if (metrics_format != "prom" && metrics_format != "json") return Usage();
  if (lane_capacity < 1) return Usage();
  if (metrics_every < 0 || stats_every < 0) {
    std::fprintf(stderr,
                 "gsps_monitor: --metrics_every and --stats_every must be "
                 ">= 0 (got %d, %d)\n",
                 metrics_every, stats_every);
    return Usage();
  }
  const bool metrics_json = metrics_format == "json";

  const std::optional<std::string> queries_text = ReadFile(queries_path);
  if (!queries_text) {
    std::fprintf(stderr, "cannot read %s\n", queries_path.c_str());
    return 2;
  }
  IoError parse_error;
  const std::optional<std::vector<Graph>> queries =
      ParseGraphs(*queries_text, &parse_error);
  if (!queries) {
    std::fprintf(stderr, "malformed query file %s: %s\n", queries_path.c_str(),
                 parse_error.ToString().c_str());
    return 2;
  }
  if (queries->empty()) {
    std::fprintf(stderr, "empty query file %s\n", queries_path.c_str());
    return 2;
  }

  std::vector<GraphStream> streams;
  for (const std::string& path : SplitCommas(stream_path)) {
    const std::optional<std::string> stream_text = ReadFile(path);
    if (!stream_text) {
      std::fprintf(stderr, "cannot read %s\n", path.c_str());
      return 2;
    }
    std::optional<GraphStream> stream = ParseStream(*stream_text, &parse_error);
    if (!stream) {
      std::fprintf(stderr, "malformed stream file %s: %s\n", path.c_str(),
                   parse_error.ToString().c_str());
      return 2;
    }
    streams.push_back(*std::move(stream));
  }
  if (streams.empty()) return Usage();

  EngineOptions options;
  options.nnt_depth = depth;
  if (join == "dsc") {
    options.join_kind = JoinKind::kDominatedSetCover;
  } else if (join == "nl") {
    options.join_kind = JoinKind::kNestedLoop;
  } else if (join == "skyline") {
    options.join_kind = JoinKind::kSkylineEarlyStop;
  } else {
    return Usage();
  }

  // Arm tracing before Start() so the engine allocates per-shard trace
  // rows; install the driver thread's metric sink and trace row for the
  // whole replay. When the build has GSPS_OBS_DISABLED these stay inert and
  // the flags still produce (empty) outputs.
  obs::MetricSink root_sink;
  obs::TraceBuffer* root_trace = nullptr;
  if (!trace_path.empty()) {
    obs::Tracer::Global().Enable();
    root_trace = obs::Tracer::Global().NewBuffer(/*tid=*/0);
  }
  obs::ScopedObsContext obs_scope(&root_sink, root_trace);
  // Arm the flight recorder before the engine starts so the span ring
  // covers the whole replay; SIGUSR1 can probe it while we run.
  if (!flight_path.empty()) {
    obs::FlightRecorder::Global().Arm(flight_path.c_str());
  }

  // Either scheduler drives the same shard core and reports byte-identical
  // candidates; the pipelined engine reads come from its epoch snapshots.
  std::unique_ptr<ParallelQueryEngine> barrier;
  std::unique_ptr<PipelinedQueryEngine> pipeline;
  if (pipelined) {
    PipelinedEngineOptions pipeline_options;
    pipeline_options.engine = options;
    pipeline_options.num_threads = threads;
    pipeline_options.lane_capacity = static_cast<size_t>(lane_capacity);
    pipeline = std::make_unique<PipelinedQueryEngine>(pipeline_options);
  } else {
    ParallelEngineOptions parallel_options;
    parallel_options.engine = options;
    parallel_options.num_threads = threads;
    barrier = std::make_unique<ParallelQueryEngine>(parallel_options);
  }
  const auto add_query = [&](const Graph& q) {
    return pipeline ? pipeline->AddQuery(q) : barrier->AddQuery(q);
  };
  const auto add_stream = [&](Graph start) {
    return pipeline ? pipeline->AddStream(std::move(start))
                    : barrier->AddStream(std::move(start));
  };
  for (const Graph& q : *queries) add_query(q);
  int horizon = 0;
  for (GraphStream& stream : streams) {
    add_stream(stream.StartGraph());
    horizon = std::max(horizon, stream.NumTimestamps());
  }
  if (pipeline) {
    pipeline->Start();
  } else {
    barrier->Start();
  }
  const int num_streams =
      pipeline ? pipeline->num_streams() : barrier->num_streams();
  const int num_shards =
      pipeline ? pipeline->num_shards() : barrier->num_shards();
  const bool multi = num_streams > 1;

  Stopwatch watch;
  int64_t total_candidates = 0;
  std::vector<GraphChange> batches(static_cast<size_t>(num_streams));
  // Steady-state buffers: candidates land in `candidates`, the verified
  // subset in `reported`, and the engine's swap-based ObserveTransitions
  // (the shard-owned tracker) recycles `reported`'s storage — the per-tick
  // loop stays allocation-free.
  std::vector<int> candidates;
  std::vector<int> reported;
  CandidateTransitions transitions;
  for (int t = 0; t < horizon; ++t) {
    GSPS_OBS_SPAN("tick", "monitor");
    if (t > 0) {
      for (int i = 0; i < num_streams; ++i) {
        const GraphStream& stream = streams[static_cast<size_t>(i)];
        batches[static_cast<size_t>(i)] =
            t < stream.NumTimestamps() ? stream.ChangeAt(t) : GraphChange{};
      }
      if (pipeline) {
        // One event per (stream, timestamp), then close the epoch: the
        // snapshot reads below are then exactly the barrier engine's.
        for (int i = 0; i < num_streams; ++i) {
          IngestEvent event;
          event.stream = i;
          event.timestamp = t;
          event.change = std::move(batches[static_cast<size_t>(i)]);
          pipeline->Ingest(std::move(event));
        }
        pipeline->AdvanceEpoch(t);
      } else {
        barrier->ApplyChanges(batches);
      }
    }
    for (int i = 0; i < num_streams; ++i) {
      if (pipeline) {
        pipeline->CandidatesForStream(i, &candidates);
      } else {
        barrier->CandidatesForStream(i, &candidates);
      }
      reported.clear();
      for (const int q : candidates) {
        if (verify && (pipeline ? !pipeline->VerifyCandidate(i, q)
                                : !barrier->VerifyCandidate(i, q))) {
          continue;
        }
        ++total_candidates;
        reported.push_back(q);
      }
      const std::string where =
          multi ? " s" + std::to_string(i) : std::string();
      if (events) {
        if (pipeline) {
          pipeline->ObserveTransitions(i, &reported, &transitions);
        } else {
          barrier->ObserveTransitions(i, &reported, &transitions);
        }
        if (!quiet && !transitions.empty()) {
          std::string line;
          for (const int q : transitions.appeared) {
            line += " +q" + std::to_string(q);
          }
          for (const int q : transitions.disappeared) {
            line += " -q" + std::to_string(q);
          }
          std::printf("t=%d%s events:%s\n", t, where.c_str(), line.c_str());
        }
      } else if (!quiet && !reported.empty()) {
        std::string hits;
        for (const int q : reported) hits += " q" + std::to_string(q);
        std::printf("t=%d%s%s%s\n", t, where.c_str(),
                    verify ? " matches:" : " candidates:", hits.c_str());
      }
    }
    const bool flush_metrics = !metrics_path.empty() && metrics_every > 0 &&
                               (t + 1) % metrics_every == 0;
    const bool flush_stats = stats_every > 0 && (t + 1) % stats_every == 0;
    if (flush_metrics || flush_stats) {
      const obs::WindowSnapshot window = CloseWindow(root_sink);
      if (flush_stats) PrintHeartbeat(t, window, total_candidates);
      if (flush_metrics && !WriteMetricsSnapshot(metrics_path, metrics_json)) {
        std::fprintf(stderr, "cannot write %s\n", metrics_path.c_str());
        return 2;
      }
    }
  }
  std::printf("processed %d timestamps x %zu queries x %d stream(s) on %d "
              "shard(s) in %.1f ms; %lld %s reported\n",
              horizon, queries->size(), num_streams, num_shards,
              watch.ElapsedMillis(), static_cast<long long>(total_candidates),
              verify ? "verified matches" : "candidates");
  if (!metrics_path.empty() || stats_every > 0 || !flight_path.empty()) {
    // Close the tail window even when no heartbeat prints: the fold also
    // publishes the cumulative aggregate for the flight-recorder dump.
    CloseWindow(root_sink);
    if (!metrics_path.empty() &&
        !WriteMetricsSnapshot(metrics_path, metrics_json)) {
      std::fprintf(stderr, "cannot write %s\n", metrics_path.c_str());
      return 2;
    }
  }
  // The final dump happens after the last metrics flush, so the dump's
  // cumulative section matches the final --metrics snapshot exactly.
  if (!flight_path.empty()) {
    if (!obs::FlightRecorder::Global().DumpNow()) {
      std::fprintf(stderr, "cannot write %s\n", flight_path.c_str());
      return 2;
    }
  }
  if (!trace_path.empty()) {
    if (!WriteWholeFile(trace_path, obs::Tracer::Global().ToJson())) {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 2;
    }
  }
  return 0;
}
