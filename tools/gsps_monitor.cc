// gsps_monitor — continuous subgraph pattern monitoring over a recorded
// graph stream.
//
// Reads a query file (graphs in the "g/v/e" dataset format of graph_io.h)
// and a stream file (the "v/e/t/+/-" format of stream_io.h), replays the
// stream through the engine, and prints the possibly-matching queries at
// every timestamp. With --verify each candidate is confirmed by the exact
// checker before being printed; with --events only the transitions
// (patterns that start or stop matching) are printed instead of the full
// candidate set.
//
//   gsps_monitor --queries=patterns.txt --stream=traffic.txt ...
//       [--depth=3] [--join=dsc|nl|skyline] [--verify] [--events] [--quiet]
//
// Exit status: 0 on success, 2 on usage/file errors.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "gsps/common/stopwatch.h"
#include "gsps/engine/candidate_tracker.h"
#include "gsps/engine/continuous_query_engine.h"
#include "gsps/graph/graph_io.h"
#include "gsps/graph/stream_io.h"

namespace {

using namespace gsps;

std::string GetFlag(int argc, char** argv, const std::string& name,
                    const std::string& default_value) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i]).substr(prefix.size());
    }
  }
  return default_value;
}

bool HasFlag(int argc, char** argv, const std::string& name) {
  const std::string flag = "--" + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

std::optional<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int Usage() {
  std::fprintf(stderr,
               "usage: gsps_monitor --queries=FILE --stream=FILE\n"
               "        [--depth=3] [--join=dsc|nl|skyline] [--verify] "
               "[--events] [--quiet]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string queries_path = GetFlag(argc, argv, "queries", "");
  const std::string stream_path = GetFlag(argc, argv, "stream", "");
  if (queries_path.empty() || stream_path.empty()) return Usage();

  const std::optional<std::string> queries_text = ReadFile(queries_path);
  if (!queries_text) {
    std::fprintf(stderr, "cannot read %s\n", queries_path.c_str());
    return 2;
  }
  const std::optional<std::vector<Graph>> queries =
      ParseGraphs(*queries_text);
  if (!queries || queries->empty()) {
    std::fprintf(stderr, "malformed or empty query file %s\n",
                 queries_path.c_str());
    return 2;
  }

  const std::optional<std::string> stream_text = ReadFile(stream_path);
  if (!stream_text) {
    std::fprintf(stderr, "cannot read %s\n", stream_path.c_str());
    return 2;
  }
  const std::optional<GraphStream> stream = ParseStream(*stream_text);
  if (!stream) {
    std::fprintf(stderr, "malformed stream file %s\n", stream_path.c_str());
    return 2;
  }

  EngineOptions options;
  options.nnt_depth = std::atoi(GetFlag(argc, argv, "depth", "3").c_str());
  const std::string join = GetFlag(argc, argv, "join", "dsc");
  if (join == "dsc") {
    options.join_kind = JoinKind::kDominatedSetCover;
  } else if (join == "nl") {
    options.join_kind = JoinKind::kNestedLoop;
  } else if (join == "skyline") {
    options.join_kind = JoinKind::kSkylineEarlyStop;
  } else {
    return Usage();
  }
  const bool verify = HasFlag(argc, argv, "verify");
  const bool events = HasFlag(argc, argv, "events");
  const bool quiet = HasFlag(argc, argv, "quiet");

  ContinuousQueryEngine engine(options);
  for (const Graph& q : *queries) engine.AddQuery(q);
  engine.AddStream(stream->StartGraph());
  engine.Start();

  Stopwatch watch;
  CandidateTracker tracker(1);
  int64_t total_candidates = 0;
  for (int t = 0; t < stream->NumTimestamps(); ++t) {
    if (t > 0) engine.ApplyChange(0, stream->ChangeAt(t));
    std::vector<int> reported;
    for (const int q : engine.CandidatesForStream(0)) {
      if (verify && !engine.VerifyCandidate(0, q)) continue;
      ++total_candidates;
      reported.push_back(q);
    }
    if (events) {
      const CandidateTransitions transitions = tracker.Observe(0, reported);
      if (!quiet && !transitions.empty()) {
        std::string line;
        for (const int q : transitions.appeared) {
          line += " +q" + std::to_string(q);
        }
        for (const int q : transitions.disappeared) {
          line += " -q" + std::to_string(q);
        }
        std::printf("t=%d events:%s\n", t, line.c_str());
      }
    } else if (!quiet && !reported.empty()) {
      std::string hits;
      for (const int q : reported) hits += " q" + std::to_string(q);
      std::printf("t=%d%s%s\n", t, verify ? " matches:" : " candidates:",
                  hits.c_str());
    }
  }
  std::printf("processed %d timestamps x %zu queries in %.1f ms; "
              "%lld %s reported\n",
              stream->NumTimestamps(), queries->size(),
              watch.ElapsedMillis(), static_cast<long long>(total_candidates),
              verify ? "verified matches" : "candidates");
  return 0;
}
