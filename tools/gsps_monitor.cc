// gsps_monitor — continuous subgraph pattern monitoring over recorded
// graph streams.
//
// Reads a query file (graphs in the "g/v/e" dataset format of graph_io.h)
// and one or more stream files (the "v/e/t/+/-" format of stream_io.h,
// comma-separated), replays the streams through the engine, and prints the
// possibly-matching queries at every timestamp. With --verify each
// candidate is confirmed by the exact checker before being printed; with
// --events only the transitions (patterns that start or stop matching) are
// printed instead of the full candidate set. --threads=N shards the
// streams over N workers (0 = one per hardware thread, 1 = the sequential
// engine; the reported candidates are identical either way).
//
//   gsps_monitor --queries=patterns.txt --stream=traffic.txt[,more.txt...]
//       [--depth=3] [--join=dsc|nl|skyline] [--threads=1] [--verify]
//       [--events] [--quiet]
//
// Exit status: 0 on success, 2 on usage/file errors.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gsps/common/stopwatch.h"
#include "gsps/engine/candidate_tracker.h"
#include "gsps/engine/parallel_query_engine.h"
#include "gsps/graph/graph_io.h"
#include "gsps/graph/stream_io.h"

namespace {

using namespace gsps;

std::string GetFlag(int argc, char** argv, const std::string& name,
                    const std::string& default_value) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i]).substr(prefix.size());
    }
  }
  return default_value;
}

bool HasFlag(int argc, char** argv, const std::string& name) {
  const std::string flag = "--" + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

std::optional<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int Usage() {
  std::fprintf(stderr,
               "usage: gsps_monitor --queries=FILE --stream=FILE[,FILE...]\n"
               "        [--depth=3] [--join=dsc|nl|skyline] [--threads=1] "
               "[--verify] [--events] [--quiet]\n");
  return 2;
}

std::vector<std::string> SplitCommas(const std::string& spec) {
  std::vector<std::string> parts;
  std::string token;
  for (const char c : spec + ",") {
    if (c == ',') {
      if (!token.empty()) parts.push_back(token);
      token.clear();
    } else {
      token.push_back(c);
    }
  }
  return parts;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string queries_path = GetFlag(argc, argv, "queries", "");
  const std::string stream_path = GetFlag(argc, argv, "stream", "");
  if (queries_path.empty() || stream_path.empty()) return Usage();

  const std::optional<std::string> queries_text = ReadFile(queries_path);
  if (!queries_text) {
    std::fprintf(stderr, "cannot read %s\n", queries_path.c_str());
    return 2;
  }
  IoError parse_error;
  const std::optional<std::vector<Graph>> queries =
      ParseGraphs(*queries_text, &parse_error);
  if (!queries) {
    std::fprintf(stderr, "malformed query file %s: %s\n", queries_path.c_str(),
                 parse_error.ToString().c_str());
    return 2;
  }
  if (queries->empty()) {
    std::fprintf(stderr, "empty query file %s\n", queries_path.c_str());
    return 2;
  }

  std::vector<GraphStream> streams;
  for (const std::string& path : SplitCommas(stream_path)) {
    const std::optional<std::string> stream_text = ReadFile(path);
    if (!stream_text) {
      std::fprintf(stderr, "cannot read %s\n", path.c_str());
      return 2;
    }
    std::optional<GraphStream> stream = ParseStream(*stream_text, &parse_error);
    if (!stream) {
      std::fprintf(stderr, "malformed stream file %s: %s\n", path.c_str(),
                   parse_error.ToString().c_str());
      return 2;
    }
    streams.push_back(*std::move(stream));
  }
  if (streams.empty()) return Usage();

  EngineOptions options;
  options.nnt_depth = std::atoi(GetFlag(argc, argv, "depth", "3").c_str());
  const std::string join = GetFlag(argc, argv, "join", "dsc");
  if (join == "dsc") {
    options.join_kind = JoinKind::kDominatedSetCover;
  } else if (join == "nl") {
    options.join_kind = JoinKind::kNestedLoop;
  } else if (join == "skyline") {
    options.join_kind = JoinKind::kSkylineEarlyStop;
  } else {
    return Usage();
  }
  const bool verify = HasFlag(argc, argv, "verify");
  const bool events = HasFlag(argc, argv, "events");
  const bool quiet = HasFlag(argc, argv, "quiet");

  ParallelEngineOptions parallel_options;
  parallel_options.engine = options;
  parallel_options.num_threads =
      std::atoi(GetFlag(argc, argv, "threads", "1").c_str());

  ParallelQueryEngine engine(parallel_options);
  for (const Graph& q : *queries) engine.AddQuery(q);
  int horizon = 0;
  for (GraphStream& stream : streams) {
    engine.AddStream(stream.StartGraph());
    horizon = std::max(horizon, stream.NumTimestamps());
  }
  engine.Start();
  const int num_streams = engine.num_streams();
  const bool multi = num_streams > 1;

  Stopwatch watch;
  CandidateTracker tracker(num_streams);
  int64_t total_candidates = 0;
  std::vector<GraphChange> batches(static_cast<size_t>(num_streams));
  for (int t = 0; t < horizon; ++t) {
    if (t > 0) {
      for (int i = 0; i < num_streams; ++i) {
        const GraphStream& stream = streams[static_cast<size_t>(i)];
        batches[static_cast<size_t>(i)] =
            t < stream.NumTimestamps() ? stream.ChangeAt(t) : GraphChange{};
      }
      engine.ApplyChanges(batches);
    }
    for (int i = 0; i < num_streams; ++i) {
      std::vector<int> reported;
      for (const int q : engine.CandidatesForStream(i)) {
        if (verify && !engine.VerifyCandidate(i, q)) continue;
        ++total_candidates;
        reported.push_back(q);
      }
      const std::string where =
          multi ? " s" + std::to_string(i) : std::string();
      if (events) {
        const CandidateTransitions transitions = tracker.Observe(i, reported);
        if (!quiet && !transitions.empty()) {
          std::string line;
          for (const int q : transitions.appeared) {
            line += " +q" + std::to_string(q);
          }
          for (const int q : transitions.disappeared) {
            line += " -q" + std::to_string(q);
          }
          std::printf("t=%d%s events:%s\n", t, where.c_str(), line.c_str());
        }
      } else if (!quiet && !reported.empty()) {
        std::string hits;
        for (const int q : reported) hits += " q" + std::to_string(q);
        std::printf("t=%d%s%s%s\n", t, where.c_str(),
                    verify ? " matches:" : " candidates:", hits.c_str());
      }
    }
  }
  std::printf("processed %d timestamps x %zu queries x %d stream(s) on %d "
              "shard(s) in %.1f ms; %lld %s reported\n",
              horizon, queries->size(), num_streams, engine.num_shards(),
              watch.ElapsedMillis(), static_cast<long long>(total_candidates),
              verify ? "verified matches" : "candidates");
  return 0;
}
