// Network intrusion monitoring — the paper's motivating application (§I).
//
// Traffic between hosts is modeled as a labeled graph stream (labels =
// host roles: workstation, server, database, gateway). A set of attack
// patterns derived from domain knowledge (a scanning fan, a pivot chain
// into the database tier, an exfiltration triangle) is monitored
// continuously; every possible appearance is reported in real time and the
// candidates are verified exactly before alerting.
//
//   $ ./network_intrusion

#include <cstdio>
#include <vector>

#include "gsps/common/random.h"
#include "gsps/engine/continuous_query_engine.h"
#include "gsps/graph/graph.h"
#include "gsps/graph/graph_change.h"

namespace {

using namespace gsps;

constexpr VertexLabel kWorkstation = 0;
constexpr VertexLabel kServer = 1;
constexpr VertexLabel kDatabase = 2;
constexpr VertexLabel kGateway = 3;

// Scanning fan: one workstation talking to three servers at once.
Graph ScanPattern() {
  Graph g;
  const VertexId w = g.AddVertex(kWorkstation);
  for (int i = 0; i < 3; ++i) {
    const VertexId s = g.AddVertex(kServer);
    g.AddEdge(w, s, 0);
  }
  return g;
}

// Pivot chain: workstation -> server -> database.
Graph PivotPattern() {
  Graph g;
  const VertexId w = g.AddVertex(kWorkstation);
  const VertexId s = g.AddVertex(kServer);
  const VertexId d = g.AddVertex(kDatabase);
  g.AddEdge(w, s, 0);
  g.AddEdge(s, d, 0);
  return g;
}

// Exfiltration triangle: database, server, and gateway all interconnected.
Graph ExfiltrationPattern() {
  Graph g;
  const VertexId d = g.AddVertex(kDatabase);
  const VertexId s = g.AddVertex(kServer);
  const VertexId gw = g.AddVertex(kGateway);
  g.AddEdge(d, s, 0);
  g.AddEdge(s, gw, 0);
  g.AddEdge(d, gw, 0);
  return g;
}

}  // namespace

int main() {
  // The monitored network: 12 workstations, 4 servers, 2 databases,
  // 2 gateways.
  Graph network;
  std::vector<VertexId> hosts;
  for (int i = 0; i < 12; ++i) hosts.push_back(network.AddVertex(kWorkstation));
  for (int i = 0; i < 4; ++i) hosts.push_back(network.AddVertex(kServer));
  for (int i = 0; i < 2; ++i) hosts.push_back(network.AddVertex(kDatabase));
  for (int i = 0; i < 2; ++i) hosts.push_back(network.AddVertex(kGateway));

  EngineOptions options;
  options.join_kind = JoinKind::kSkylineEarlyStop;  // Sparse traffic.
  ContinuousQueryEngine engine(options);
  const int scan = engine.AddQuery(ScanPattern());
  const int pivot = engine.AddQuery(PivotPattern());
  const int exfil = engine.AddQuery(ExfiltrationPattern());
  engine.AddStream(network);
  engine.Start();

  const char* names[] = {"SCAN", "PIVOT", "EXFILTRATION"};
  (void)scan;
  (void)pivot;
  (void)exfil;

  // Simulated traffic: random short-lived flows, with an attack staged
  // around t=6..9 (a workstation scans servers, pivots, then data moves
  // through a gateway).
  Rng rng(2026);
  const int kHorizon = 14;
  for (int t = 0; t < kHorizon; ++t) {
    GraphChange change;
    if (t > 0) {
      // Background noise: ordinary flows among workstations and servers
      // appear and disappear (databases and gateways only see flows when
      // the staged attack reaches them).
      for (int k = 0; k < 4; ++k) {
        const VertexId a = static_cast<VertexId>(rng.UniformInt(0, 11));
        const VertexId b = static_cast<VertexId>(rng.UniformInt(0, 15));
        if (a == b) continue;
        if (engine.StreamGraph(0).HasEdge(a, b)) {
          change.ops.push_back(EdgeOp::Delete(a, b));
        } else {
          change.ops.push_back(
              EdgeOp::Insert(a, b, 0, engine.StreamGraph(0).GetVertexLabel(a),
                             engine.StreamGraph(0).GetVertexLabel(b)));
        }
      }
      // The staged attack (workstation 0; servers 12..15; database 16;
      // gateway 18).
      if (t == 6) {
        for (VertexId s = 12; s < 15; ++s) {
          change.ops.push_back(
              EdgeOp::Insert(0, s, 0, kWorkstation, kServer));
        }
      }
      if (t == 7) {
        change.ops.push_back(EdgeOp::Insert(12, 16, 0, kServer, kDatabase));
      }
      if (t == 8) {
        change.ops.push_back(EdgeOp::Insert(12, 18, 0, kServer, kGateway));
        change.ops.push_back(EdgeOp::Insert(16, 18, 0, kDatabase, kGateway));
      }
      engine.ApplyChange(0, change);
    }

    std::printf("t=%-3d flows=%-4d alerts:", t,
                engine.StreamGraph(0).NumEdges());
    bool any = false;
    for (const int q : engine.CandidatesForStream(0)) {
      // Filter-and-verify: candidates are cheap, verification is exact.
      if (engine.VerifyCandidate(0, q)) {
        std::printf(" %s", names[q]);
        any = true;
      }
    }
    if (!any) std::printf(" (none)");
    std::printf("\n");
  }
  return 0;
}
