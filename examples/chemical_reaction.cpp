// Chemical reaction monitoring — the paper's second motivating scenario
// (§I): compound structures change along a reaction process, and a chemist
// wants to know the moment a functional-group motif can appear.
//
// The example builds an AIDS-like compound, registers three functional-
// group patterns (a carboxyl-like fork, an ester-like chain, and a ring
// motif), then replays a plausible reaction: bonds break, intermediate
// structures form, and a ring closes. The engine reports possible
// appearances continuously; exact verification confirms them.
//
//   $ ./chemical_reaction

#include <cstdio>
#include <vector>

#include "gsps/engine/continuous_query_engine.h"
#include "gsps/graph/graph.h"
#include "gsps/graph/graph_change.h"

namespace {

using namespace gsps;

// Labels loosely encode elements.
constexpr VertexLabel kC = 0;  // Carbon.
constexpr VertexLabel kO = 1;  // Oxygen.
constexpr VertexLabel kN = 2;  // Nitrogen.

// Bond labels.
constexpr EdgeLabel kSingle = 0;
constexpr EdgeLabel kDouble = 1;

// Carboxyl-like fork: C with a double-bonded O and a single-bonded O.
Graph CarboxylPattern() {
  Graph g;
  const VertexId c = g.AddVertex(kC);
  const VertexId o1 = g.AddVertex(kO);
  const VertexId o2 = g.AddVertex(kO);
  g.AddEdge(c, o1, kDouble);
  g.AddEdge(c, o2, kSingle);
  return g;
}

// Ester-like chain: C-O-C with a double-bonded O on the first carbon.
Graph EsterPattern() {
  Graph g;
  const VertexId c1 = g.AddVertex(kC);
  const VertexId o_bridge = g.AddVertex(kO);
  const VertexId c2 = g.AddVertex(kC);
  const VertexId o_double = g.AddVertex(kO);
  g.AddEdge(c1, o_bridge, kSingle);
  g.AddEdge(o_bridge, c2, kSingle);
  g.AddEdge(c1, o_double, kDouble);
  return g;
}

// Five-ring with a nitrogen (pyrrole-like).
Graph RingPattern() {
  Graph g;
  std::vector<VertexId> ring;
  ring.push_back(g.AddVertex(kN));
  for (int i = 0; i < 4; ++i) ring.push_back(g.AddVertex(kC));
  for (int i = 0; i < 5; ++i) {
    g.AddEdge(ring[static_cast<size_t>(i)],
              ring[static_cast<size_t>((i + 1) % 5)], kSingle);
  }
  return g;
}

}  // namespace

int main() {
  // The starting compound: a carbon backbone with an amine and a carbonyl.
  Graph compound;
  std::vector<VertexId> backbone;
  for (int i = 0; i < 6; ++i) backbone.push_back(compound.AddVertex(kC));
  for (int i = 0; i + 1 < 6; ++i) {
    compound.AddEdge(backbone[static_cast<size_t>(i)],
                     backbone[static_cast<size_t>(i + 1)], kSingle);
  }
  const VertexId amine = compound.AddVertex(kN);      // id 6
  compound.AddEdge(backbone[0], amine, kSingle);
  const VertexId carbonyl_o = compound.AddVertex(kO); // id 7
  compound.AddEdge(backbone[5], carbonyl_o, kDouble);

  ContinuousQueryEngine engine(EngineOptions{});
  engine.AddQuery(CarboxylPattern());
  engine.AddQuery(EsterPattern());
  engine.AddQuery(RingPattern());
  engine.AddStream(compound);
  engine.Start();
  const char* names[] = {"carboxyl", "ester", "N-ring"};

  // The staged reaction, one change batch per step.
  std::vector<GraphChange> reaction(7);
  // t=1: hydroxyl oxygen attaches to the carbonyl carbon -> carboxyl group.
  reaction[1].ops.push_back(EdgeOp::Insert(5, 8, kSingle, kC, kO));
  // t=2: a methyl carbon condenses onto that oxygen -> ester bridge.
  reaction[2].ops.push_back(EdgeOp::Insert(8, 9, kSingle, kO, kC));
  // t=3: the carboxyl double bond migrates (breaks) -> ester destroyed too.
  reaction[3].ops.push_back(EdgeOp::Delete(5, 7));
  // t=4..5: the backbone folds: amine nitrogen bonds to carbon 4,
  // closing a 5-ring N(6)-C0-C1-C2-C3? (N-C0, C3-N closes a ring of 5).
  reaction[4].ops.push_back(EdgeOp::Insert(6, 3, kSingle, kN, kC));
  // t=6: the ring opens again.
  reaction[6].ops.push_back(EdgeOp::Delete(6, 3));

  std::printf("step  bonds  motifs (candidate -> verified)\n");
  for (int t = 0; t < static_cast<int>(reaction.size()); ++t) {
    if (t > 0) engine.ApplyChange(0, reaction[static_cast<size_t>(t)]);
    std::printf("%-5d %-6d", t, engine.StreamGraph(0).NumEdges());
    bool any = false;
    for (const int q : engine.CandidatesForStream(0)) {
      const bool real = engine.VerifyCandidate(0, q);
      std::printf(" %s%s", names[q], real ? "(+)" : "(?)");
      any = true;
    }
    if (!any) std::printf(" (none)");
    std::printf("\n");
  }
  return 0;
}
