// Quickstart: monitor one evolving graph for one subgraph pattern.
//
// Builds a triangle query, streams edge changes into the engine, and prints
// at each timestamp whether the pattern possibly appears (the NPV filter)
// and whether it actually appears (exact verification of the candidates).
//
//   $ ./quickstart

#include <algorithm>
#include <cstdio>

#include "gsps/engine/continuous_query_engine.h"
#include "gsps/graph/graph.h"
#include "gsps/graph/graph_change.h"

int main() {
  using namespace gsps;

  // The pattern: a triangle of "router" nodes (label 0).
  Graph triangle;
  triangle.AddVertex(0);
  triangle.AddVertex(0);
  triangle.AddVertex(0);
  triangle.AddEdge(0, 1, 0);
  triangle.AddEdge(1, 2, 0);
  triangle.AddEdge(0, 2, 0);

  // The stream starts as a 5-vertex path.
  Graph start;
  for (int i = 0; i < 5; ++i) start.AddVertex(0);
  for (int i = 0; i + 1 < 5; ++i) start.AddEdge(i, i + 1, 0);

  EngineOptions options;
  options.nnt_depth = 3;                            // Paper default.
  options.join_kind = JoinKind::kDominatedSetCover; // Paper's best on dense.
  ContinuousQueryEngine engine(options);
  const int query = engine.AddQuery(triangle);
  const int stream = engine.AddStream(start);
  engine.Start();

  // A scripted change stream: close a triangle at t=2, break it at t=4.
  std::vector<GraphChange> changes(6);
  changes[2].ops.push_back(EdgeOp::Insert(0, 2, 0, 0, 0));
  changes[4].ops.push_back(EdgeOp::Delete(1, 2));

  std::printf("t  candidate  verified\n");
  for (int t = 0; t < static_cast<int>(changes.size()); ++t) {
    if (t > 0) engine.ApplyChange(stream, changes[static_cast<size_t>(t)]);
    const std::vector<int> candidates = engine.CandidatesForStream(stream);
    const bool candidate =
        std::find(candidates.begin(), candidates.end(), query) !=
        candidates.end();
    const bool verified = candidate && engine.VerifyCandidate(stream, query);
    std::printf("%-2d %-10s %s\n", t, candidate ? "yes" : "no",
                verified ? "yes" : "no");
  }
  return 0;
}
