// Social proximity monitoring over Reality-Mining-like streams.
//
// Demonstrates the library at workload scale: 5 proximity streams of 97
// users, 12 meeting-pattern queries, continuous monitoring with the skyline
// strategy (the paper's winner on sparse real streams), plus the dynamic
// query registration extension — a new pattern is added mid-stream.
//
//   $ ./social_proximity

#include <cstdio>

#include "gsps/common/stopwatch.h"
#include "gsps/engine/continuous_query_engine.h"
#include "gsps/gen/reality_like.h"

int main() {
  using namespace gsps;

  RealityLikeParams params;
  params.num_streams = 5;
  params.num_queries = 12;
  params.num_timestamps = 60;
  params.seed = 4;
  const StreamDataset dataset = MakeRealityLikeStreams(params);

  EngineOptions options;
  options.join_kind = JoinKind::kSkylineEarlyStop;
  ContinuousQueryEngine engine(options);
  for (const Graph& q : dataset.queries) engine.AddQuery(q);
  for (const GraphStream& s : dataset.streams) {
    engine.AddStream(s.StartGraph());
  }
  engine.Start();

  Stopwatch watch;
  int64_t total_candidates = 0;
  int dynamic_query = -1;
  for (int t = 1; t < params.num_timestamps; ++t) {
    for (size_t i = 0; i < dataset.streams.size(); ++i) {
      engine.ApplyChange(static_cast<int>(i),
                         dataset.streams[i].ChangeAt(t));
    }
    const auto pairs = engine.AllCandidatePairs();
    total_candidates += static_cast<int64_t>(pairs.size());

    if (t == 30) {
      // A analyst adds a new meeting pattern mid-stream: a 4-person clique
      // drawn from the current state of stream 0.
      Graph clique;
      for (int i = 0; i < 4; ++i) clique.AddVertex(0);
      for (int i = 0; i < 4; ++i) {
        for (int k = i + 1; k < 4; ++k) clique.AddEdge(i, k, 0);
      }
      dynamic_query = engine.AddQueryDynamic(clique);
      std::printf("t=%d: registered dynamic query #%d (4-clique)\n", t,
                  dynamic_query);
    }

    if (t % 10 == 0) {
      std::printf("t=%-4d candidate pairs=%-4zu (of %d)\n", t, pairs.size(),
                  engine.num_streams() * engine.num_queries());
    }
  }
  const double elapsed = watch.ElapsedMillis();
  std::printf("\nmonitored %d timestamps x %d streams in %.1f ms "
              "(%.3f ms/timestamp)\n",
              params.num_timestamps - 1, engine.num_streams(), elapsed,
              elapsed / (params.num_timestamps - 1));
  std::printf("average candidate pairs per timestamp: %.2f\n",
              static_cast<double>(total_candidates) /
                  (params.num_timestamps - 1));

  // Verify the final timestamp's candidates exactly.
  int verified = 0, candidates = 0;
  for (const auto& [i, j] : engine.AllCandidatePairs()) {
    ++candidates;
    if (engine.VerifyCandidate(i, j)) ++verified;
  }
  std::printf("final timestamp: %d candidates, %d verified exact matches\n",
              candidates, verified);
  return 0;
}
